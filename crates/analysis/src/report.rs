//! Markdown report generation: a per-system summary a user can commit
//! alongside their results — thresholds, peak rates, transfer-type
//! comparison, and the advisor-style reading, built from raw sweeps.

use crate::table::sd_pair_cell;
use blob_core::runner::Sweep;
use blob_sim::{Offload, Precision};

/// One (precision, iteration-count) group of sweeps for a problem type.
fn find(sweeps: &[Sweep], precision: Precision, iters: u32) -> Option<&Sweep> {
    sweeps
        .iter()
        .find(|s| s.precision == precision && s.iterations == iters)
}

fn threshold_param(sweep: &Sweep, offload: Offload) -> Option<usize> {
    let t = sweep.threshold(offload)?;
    sweep
        .records
        .iter()
        .find(|r| r.kernel == t)
        .map(|r| r.param)
}

/// Builds a markdown report for one problem type on one system from
/// sweeps covering several iteration counts (both precisions expected).
///
/// The sweeps must all belong to the same system and problem type.
pub fn markdown_report(title: &str, sweeps: &[Sweep]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));
    if sweeps.is_empty() {
        out.push_str("_no data_\n");
        return out;
    }
    let system = &sweeps[0].system;
    let problem = sweeps[0].problem;
    out.push_str(&format!(
        "- system: **{system}**\n- problem type: **{}** (`{}`)\n- sizes swept: {}\n\n",
        problem.label(),
        problem.id(),
        sweeps[0].records.len(),
    ));

    // threshold table
    let mut iters: Vec<u32> = sweeps.iter().map(|s| s.iterations).collect();
    iters.sort_unstable();
    iters.dedup();
    out.push_str("## Offload thresholds (S : D)\n\n");
    out.push_str("| Iterations | Once | Always | USM |\n|---|---|---|---|\n");
    for &i in &iters {
        let cell = |o: Offload| {
            let s32 = find(sweeps, Precision::F32, i).and_then(|s| threshold_param(s, o));
            let s64 = find(sweeps, Precision::F64, i).and_then(|s| threshold_param(s, o));
            sd_pair_cell(s32, s64)
        };
        out.push_str(&format!(
            "| {i} | {} | {} | {} |\n",
            cell(Offload::TransferOnce),
            cell(Offload::TransferAlways),
            cell(Offload::Unified)
        ));
    }

    // peak achieved rates at the largest size
    out.push_str("\n## Peak achieved GFLOP/s (largest swept size)\n\n");
    out.push_str("| Iterations | Precision | CPU | GPU Once | GPU Always | GPU USM |\n|---|---|---|---|---|---|\n");
    for &i in &iters {
        for precision in Precision::ALL {
            if let Some(s) = find(sweeps, precision, i) {
                if let Some(last) = s.records.last() {
                    let g = |o: Offload| {
                        last.gpu_sample(o)
                            .map(|x| format!("{:.0}", x.gflops))
                            .unwrap_or_else(|| "—".into())
                    };
                    out.push_str(&format!(
                        "| {i} | {precision} | {:.0} | {} | {} | {} |\n",
                        last.cpu_gflops,
                        g(Offload::TransferOnce),
                        g(Offload::TransferAlways),
                        g(Offload::Unified)
                    ));
                }
            }
        }
    }

    // reading
    out.push_str("\n## Reading\n\n");
    let any_threshold = iters.iter().any(|&i| {
        find(sweeps, Precision::F32, i)
            .and_then(|s| threshold_param(s, Offload::TransferOnce))
            .is_some()
    });
    if any_threshold {
        out.push_str(
            "A Transfer-Once threshold exists: problems at or above it are \
             guaranteed faster on the GPU, transfers included. Below it, or \
             with Transfer-Always data movement, keep the kernel on the CPU \
             unless the performance graphs show an interior GPU window.\n",
        );
    } else {
        out.push_str(
            "No Transfer-Once threshold was produced: the CPU holds the \
             advantage through the top of the swept range for this problem \
             type. Note (paper §V): the absence of a threshold does not mean \
             the CPU wins at *every* size — check the curves for interior \
             GPU windows.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_core::problem::{GemmProblem, GemvProblem, Problem};
    use blob_core::runner::{run_sweep, SweepConfig};
    use blob_sim::presets;

    fn sweeps(problem: Problem, max: usize) -> Vec<Sweep> {
        let sys = presets::isambard_ai();
        let mut out = Vec::new();
        for iters in [1u32, 8] {
            for precision in Precision::ALL {
                out.push(run_sweep(
                    &sys,
                    problem,
                    precision,
                    &SweepConfig::new(1, max, iters),
                ));
            }
        }
        out
    }

    #[test]
    fn report_contains_tables_and_reading() {
        let md = markdown_report(
            "GH200 square GEMM",
            &sweeps(Problem::Gemm(GemmProblem::Square), 128),
        );
        assert!(md.starts_with("# GH200 square GEMM"));
        assert!(md.contains("## Offload thresholds"));
        assert!(md.contains("| Iterations | Once | Always | USM |"));
        assert!(md.contains("## Peak achieved GFLOP/s"));
        assert!(md.contains("A Transfer-Once threshold exists"));
        assert!(md.contains("Isambard-AI"));
        // both iteration rows appear
        assert!(md.contains("| 1 |"));
        assert!(md.contains("| 8 |"));
    }

    #[test]
    fn report_no_threshold_reading() {
        // square GEMV at 1 iteration never offloads; restrict to i=1
        let sys = presets::dawn();
        let sw: Vec<Sweep> = Precision::ALL
            .iter()
            .map(|&p| {
                run_sweep(
                    &sys,
                    Problem::Gemv(GemvProblem::Square),
                    p,
                    &SweepConfig::new(1, 64, 1),
                )
            })
            .collect();
        let md = markdown_report("DAWN GEMV", &sw);
        assert!(md.contains("No Transfer-Once threshold"));
    }

    #[test]
    fn empty_input_is_graceful() {
        let md = markdown_report("nothing", &[]);
        assert!(md.contains("_no data_"));
    }
}
