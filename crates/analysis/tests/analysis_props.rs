//! Property-based tests for the analysis crate: table rendering geometry,
//! extractor invariance to row order, and chart robustness.

use blob_analysis::{ascii_chart, extract_thresholds, svg_chart, Series, Table};
use blob_core::csv::{parse_csv, to_csv_string};
use blob_core::problem::{GemmProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_sim::{presets, Precision};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every rendered table line has identical display width, whatever the
    /// cell contents (including the em-dash and braces the paper uses).
    #[test]
    fn table_lines_equal_width(
        rows in proptest::collection::vec(
            proptest::collection::vec("[a-z0-9{}—:, ]{0,18}", 3),
            1..8,
        ),
    ) {
        let mut t = Table::new("T", &["col one", "c2", "a-much-longer-header"]);
        for r in &rows {
            t.push_row(r.clone());
        }
        let rendered = t.render();
        let widths: Vec<usize> = rendered
            .lines()
            .skip(1) // title
            .map(|l| l.chars().count())
            .collect();
        prop_assert!(!widths.is_empty());
        let first = widths[0];
        for (i, w) in widths.iter().enumerate() {
            prop_assert_eq!(*w, first, "line {} width {} vs {}", i, w, first);
        }
        // every cell appears somewhere
        for r in &rows {
            for cell in r {
                if !cell.is_empty() {
                    prop_assert!(rendered.contains(cell.as_str()));
                }
            }
        }
    }

    /// The extractor's verdicts do not depend on CSV row order.
    #[test]
    fn extractor_order_invariant(shuffle_seed in any::<u64>()) {
        let sweep = run_sweep(
            &presets::lumi(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::new(1, 64, 32),
        );
        let mut rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        let baseline = extract_thresholds(&rows);
        // deterministic shuffle
        let mut state = shuffle_seed | 1;
        for i in (1..rows.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            rows.swap(i, j);
        }
        let shuffled = extract_thresholds(&rows);
        prop_assert_eq!(baseline, shuffled);
    }

    /// Charts never panic and always embed every series name, for any
    /// finite data.
    #[test]
    fn charts_robust_to_arbitrary_series(
        data in proptest::collection::vec(
            proptest::collection::vec((0.0f64..1e6, -1e6f64..1e6), 0..50),
            1..5,
        ),
    ) {
        let series: Vec<Series> = data
            .iter()
            .enumerate()
            .map(|(i, pts)| Series {
                name: format!("series-{i}"),
                points: pts.clone(),
            })
            .collect();
        let txt = ascii_chart("t", &series, 60, 12);
        let svg = svg_chart("t", "x", "y", &series);
        let any_data = series.iter().any(|q| !q.points.is_empty());
        if any_data {
            for s in &series {
                prop_assert!(txt.contains(&s.name));
                prop_assert!(svg.contains(&s.name));
            }
        } else {
            // all-empty input renders the documented placeholder
            prop_assert!(txt.contains("no data"));
        }
        prop_assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
