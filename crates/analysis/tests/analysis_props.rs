//! Property-based tests for the analysis crate: table rendering geometry,
//! extractor invariance to row order, and chart robustness.
//!
//! Driven by `blob_core::testkit`; a failing case prints its seed for
//! replay with `testkit::run_case`.

use blob_analysis::{ascii_chart, extract_thresholds, svg_chart, Series, Table};
use blob_core::csv::{parse_csv, to_csv_string};
use blob_core::problem::{GemmProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_core::testkit::{forall, Config, Gen};
use blob_sim::{presets, Precision};

/// A random cell string over the charset the paper's tables actually use
/// (including the em-dash and braces).
fn cell(g: &mut Gen) -> String {
    const CHARSET: [char; 17] = [
        'a', 'b', 'c', 'x', 'y', 'z', '0', '1', '9', '{', '}', '—', ':', ',', ' ', 'q', '7',
    ];
    let len = g.usize_in(0, 18);
    (0..len).map(|_| *g.choose(&CHARSET)).collect()
}

/// Every rendered table line has identical display width, whatever the
/// cell contents.
#[test]
fn table_lines_equal_width() {
    forall(Config::default().cases(32), |g| {
        let nrows = g.usize_in(1, 7);
        let rows: Vec<Vec<String>> = (0..nrows)
            .map(|_| (0..3).map(|_| cell(g)).collect())
            .collect();
        let mut t = Table::new("T", &["col one", "c2", "a-much-longer-header"]);
        for r in &rows {
            t.push_row(r.clone());
        }
        let rendered = t.render();
        let widths: Vec<usize> = rendered
            .lines()
            .skip(1) // title
            .map(|l| l.chars().count())
            .collect();
        assert!(!widths.is_empty());
        let first = widths[0];
        for (i, w) in widths.iter().enumerate() {
            assert_eq!(*w, first, "line {i} width {w} vs {first}");
        }
        // every cell appears somewhere
        for r in &rows {
            for cell in r {
                if !cell.is_empty() {
                    assert!(rendered.contains(cell.as_str()));
                }
            }
        }
    });
}

/// The extractor's verdicts do not depend on CSV row order.
#[test]
fn extractor_order_invariant() {
    forall(Config::default().cases(32), |g| {
        let shuffle_seed = g.u64();
        let sweep = run_sweep(
            &presets::lumi(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::new(1, 64, 32),
        );
        let mut rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        let baseline = extract_thresholds(&rows);
        // deterministic shuffle
        let mut state = shuffle_seed | 1;
        for i in (1..rows.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            rows.swap(i, j);
        }
        let shuffled = extract_thresholds(&rows);
        assert_eq!(baseline, shuffled);
    });
}

/// Charts never panic and always embed every series name, for any
/// finite data.
#[test]
fn charts_robust_to_arbitrary_series() {
    forall(Config::default().cases(32), |g| {
        let nseries = g.usize_in(1, 4);
        let data: Vec<Vec<(f64, f64)>> = (0..nseries)
            .map(|_| {
                let npts = g.usize_in(0, 49);
                (0..npts)
                    .map(|_| (g.f64_in(0.0, 1e6), g.f64_in(-1e6, 1e6)))
                    .collect()
            })
            .collect();
        check_charts(&data);
    });
}

/// Regression case preserved from the proptest-regressions corpus:
/// a single empty series must render the documented "no data" placeholder
/// rather than panicking on an empty extent.
#[test]
fn charts_single_empty_series_regression() {
    check_charts(&[vec![]]);
}

fn check_charts(data: &[Vec<(f64, f64)>]) {
    let series: Vec<Series> = data
        .iter()
        .enumerate()
        .map(|(i, pts)| Series {
            name: format!("series-{i}"),
            points: pts.clone(),
        })
        .collect();
    let txt = ascii_chart("t", &series, 60, 12);
    let svg = svg_chart("t", "x", "y", &series);
    let any_data = series.iter().any(|q| !q.points.is_empty());
    if any_data {
        for s in &series {
            assert!(txt.contains(&s.name));
            assert!(svg.contains(&s.name));
        }
    } else {
        // all-empty input renders the documented placeholder
        assert!(txt.contains("no data"), "got: {txt}");
    }
    assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
}
