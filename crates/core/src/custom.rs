//! User-defined problem types: arbitrary fixed relationships between
//! kernel dimensions, beyond the paper's fourteen built-ins.
//!
//! The paper defines a problem type as "the fixed relationship between
//! each of a BLAS kernel's specific dimensions" (§III-C). [`DimRule`]
//! expresses one dimension as either a multiple of the size parameter or a
//! constant, which covers every shape in Fig 1 *and* whatever a user's
//! application actually does (e.g. a transformer FFN's `M=4N`):
//!
//! ```
//! use blob_core::custom::{CustomProblem, DimRule};
//! use blob_sim::Kernel;
//!
//! // M = 4N, K = N: a wide-projection GEMM family
//! let p = CustomProblem::gemm("ffn_proj", DimRule::scaled(4), DimRule::scaled(1), DimRule::scaled(1));
//! assert_eq!(p.dims(10), Kernel::Gemm { m: 40, n: 10, k: 10 });
//! ```

use blob_sim::{Kernel, KernelKind};

/// How one dimension relates to the size parameter `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimRule {
    /// `dim = factor · p` (factor ≥ 1).
    Scaled(usize),
    /// `dim = factor · p / divisor`, floored, clamped to ≥ 1.
    Ratio(usize, usize),
    /// `dim = value`, independent of `p`.
    Fixed(usize),
}

impl DimRule {
    /// `dim = factor · p`.
    pub fn scaled(factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        DimRule::Scaled(factor)
    }

    /// `dim = value` regardless of `p`.
    pub fn fixed(value: usize) -> Self {
        assert!(value >= 1, "fixed dimension must be at least 1");
        DimRule::Fixed(value)
    }

    /// `dim = factor·p/divisor` (floored, min 1) — e.g. `Ratio(1, 16)` is
    /// the paper's `M = 16K` written from K's point of view.
    pub fn ratio(factor: usize, divisor: usize) -> Self {
        assert!(
            factor >= 1 && divisor >= 1,
            "ratio parts must be at least 1"
        );
        DimRule::Ratio(factor, divisor)
    }

    /// The dimension for size parameter `p`.
    pub fn apply(&self, p: usize) -> usize {
        match *self {
            DimRule::Scaled(f) => f * p,
            DimRule::Ratio(f, d) => (f * p / d).max(1),
            DimRule::Fixed(v) => v,
        }
    }

    /// Largest `p` keeping this dimension within `max_dim` (`None` = any).
    fn max_param(&self, max_dim: usize) -> Option<usize> {
        match *self {
            DimRule::Scaled(f) => Some(max_dim / f),
            DimRule::Ratio(f, d) => Some(max_dim * d / f),
            DimRule::Fixed(v) => {
                if v <= max_dim {
                    None
                } else {
                    Some(0)
                }
            }
        }
    }
}

/// A user-defined problem type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomProblem {
    /// Family name (used in output labels and file names).
    pub name: String,
    /// Kernel family the rules describe.
    pub kind: KernelKind,
    /// How the row dimension grows with the size parameter.
    pub m: DimRule,
    /// How the column dimension grows with the size parameter.
    pub n: DimRule,
    /// Ignored for GEMV.
    pub k: DimRule,
}

impl CustomProblem {
    /// A custom GEMM family.
    pub fn gemm(name: impl Into<String>, m: DimRule, n: DimRule, k: DimRule) -> Self {
        Self {
            name: name.into(),
            kind: KernelKind::Gemm,
            m,
            n,
            k,
        }
    }

    /// A custom GEMV family.
    pub fn gemv(name: impl Into<String>, m: DimRule, n: DimRule) -> Self {
        Self {
            name: name.into(),
            kind: KernelKind::Gemv,
            m,
            n,
            k: DimRule::Fixed(1),
        }
    }

    /// Concrete dimensions for size parameter `p` (≥ 1).
    pub fn dims(&self, p: usize) -> Kernel {
        let p = p.max(1);
        match self.kind {
            KernelKind::Gemm => Kernel::Gemm {
                m: self.m.apply(p),
                n: self.n.apply(p),
                k: self.k.apply(p),
            },
            KernelKind::Gemv => Kernel::Gemv {
                m: self.m.apply(p),
                n: self.n.apply(p),
            },
        }
    }

    /// The largest size parameter whose dimensions all fit in `max_dim`
    /// (0 when a fixed dimension already exceeds the range).
    pub fn max_param(&self, max_dim: usize) -> usize {
        let rules: &[&DimRule] = match self.kind {
            KernelKind::Gemm => &[&self.m, &self.n, &self.k],
            KernelKind::Gemv => &[&self.m, &self.n],
        };
        rules
            .iter()
            .filter_map(|r| r.max_param(max_dim))
            .min()
            .unwrap_or(max_dim)
            .min(max_dim)
    }

    /// Size parameters to sweep for `[s, d]` with `step`.
    pub fn params(&self, s: usize, d: usize, step: usize) -> Vec<usize> {
        let lo = s.max(1);
        let hi = self.max_param(d);
        if hi < lo {
            return vec![];
        }
        let step = step.max(1);
        let mut out: Vec<usize> = (lo..=hi).step_by(step).collect();
        if out.last() != Some(&hi) {
            out.push(hi);
        }
        out
    }

    /// Parses a compact spec: `gemm:M,N,K` or `gemv:M,N` where each
    /// dimension is `<f>p` (scaled), `p/<d>` (ratio), or a number (fixed).
    /// Examples: `gemm:p,p,16p` (the paper's M=N, K=16M), `gemm:p,p,p/16`,
    /// `gemv:32,p`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind_s, dims_s) = spec
            .split_once(':')
            .ok_or_else(|| format!("spec '{spec}' needs the form kind:dims"))?;
        let rules: Vec<DimRule> = dims_s
            .split(',')
            .map(|d| parse_rule(d.trim()))
            .collect::<Result<_, _>>()?;
        match kind_s.to_ascii_lowercase().as_str() {
            "gemm" => {
                if rules.len() != 3 {
                    return Err("gemm spec needs 3 dimensions (M,N,K)".into());
                }
                Ok(CustomProblem::gemm(spec, rules[0], rules[1], rules[2]))
            }
            "gemv" => {
                if rules.len() != 2 {
                    return Err("gemv spec needs 2 dimensions (M,N)".into());
                }
                Ok(CustomProblem::gemv(spec, rules[0], rules[1]))
            }
            other => Err(format!("unknown kernel '{other}' (gemm or gemv)")),
        }
    }
}

fn parse_rule(s: &str) -> Result<DimRule, String> {
    if let Some(d) = s.strip_prefix("p/") {
        let d: usize = d.parse().map_err(|_| format!("bad ratio divisor '{s}'"))?;
        if d == 0 {
            return Err("ratio divisor must be positive".into());
        }
        return Ok(DimRule::ratio(1, d));
    }
    if let Some(f) = s.strip_suffix('p') {
        if f.is_empty() {
            return Ok(DimRule::scaled(1));
        }
        let f: usize = f.parse().map_err(|_| format!("bad scale factor '{s}'"))?;
        if f == 0 {
            return Err("scale factor must be positive".into());
        }
        return Ok(DimRule::scaled(f));
    }
    let v: usize = s.parse().map_err(|_| format!("bad dimension '{s}'"))?;
    if v == 0 {
        return Err("fixed dimension must be positive".into());
    }
    Ok(DimRule::fixed(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_apply() {
        assert_eq!(DimRule::scaled(3).apply(7), 21);
        assert_eq!(DimRule::fixed(32).apply(7), 32);
        assert_eq!(DimRule::ratio(1, 16).apply(100), 6);
        assert_eq!(DimRule::ratio(1, 16).apply(5), 1); // clamped
    }

    #[test]
    fn paper_problems_expressible() {
        // the paper's M=N, K=16M
        let p = CustomProblem::gemm(
            "tall_k",
            DimRule::scaled(1),
            DimRule::scaled(1),
            DimRule::scaled(16),
        );
        assert_eq!(
            p.dims(10),
            Kernel::Gemm {
                m: 10,
                n: 10,
                k: 160
            }
        );
        assert_eq!(p.max_param(4096), 256);
        // M=N=32, K >= 1
        let f = CustomProblem::gemm(
            "fixed32",
            DimRule::fixed(32),
            DimRule::fixed(32),
            DimRule::scaled(1),
        );
        assert_eq!(
            f.dims(99),
            Kernel::Gemm {
                m: 32,
                n: 32,
                k: 99
            }
        );
        assert_eq!(f.max_param(4096), 4096);
        // M=N, M=16K (K = M/16)
        let s = CustomProblem::gemm(
            "sixteenth",
            DimRule::scaled(1),
            DimRule::scaled(1),
            DimRule::ratio(1, 16),
        );
        assert_eq!(
            s.dims(160),
            Kernel::Gemm {
                m: 160,
                n: 160,
                k: 10
            }
        );
    }

    #[test]
    fn fixed_dim_larger_than_range_yields_no_params() {
        let p = CustomProblem::gemv("too_big", DimRule::fixed(100), DimRule::scaled(1));
        assert_eq!(p.max_param(64), 0);
        assert!(p.params(1, 64, 1).is_empty());
    }

    #[test]
    fn params_cover_range_with_endpoint() {
        let p = CustomProblem::gemm(
            "sq",
            DimRule::scaled(1),
            DimRule::scaled(1),
            DimRule::scaled(1),
        );
        let ps = p.params(1, 100, 7);
        assert_eq!(*ps.first().unwrap(), 1);
        assert_eq!(*ps.last().unwrap(), 100);
    }

    #[test]
    fn parse_specs() {
        let p = CustomProblem::parse("gemm:p,p,16p").unwrap();
        assert_eq!(p.dims(4), Kernel::Gemm { m: 4, n: 4, k: 64 });
        let q = CustomProblem::parse("gemm:4p,p,p/2").unwrap();
        assert_eq!(q.dims(8), Kernel::Gemm { m: 32, n: 8, k: 4 });
        let v = CustomProblem::parse("gemv:32,p").unwrap();
        assert_eq!(v.dims(9), Kernel::Gemv { m: 32, n: 9 });
        assert_eq!(
            CustomProblem::parse("gemv:p,p").unwrap().dims(3),
            Kernel::Gemv { m: 3, n: 3 }
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(CustomProblem::parse("gemm").is_err());
        assert!(CustomProblem::parse("gemm:p,p").is_err());
        assert!(CustomProblem::parse("gemv:p,p,p").is_err());
        assert!(CustomProblem::parse("trsm:p,p").is_err());
        assert!(CustomProblem::parse("gemm:0p,p,p").is_err());
        assert!(CustomProblem::parse("gemm:p,q,p").is_err());
        assert!(CustomProblem::parse("gemm:p,p,p/0").is_err());
    }

    #[test]
    fn sweepable_with_the_runner() {
        use crate::backend::Backend;
        use blob_sim::{presets, BlasCall, Offload, Precision};
        // run a custom family through the timing backend directly
        let p = CustomProblem::parse("gemm:4p,p,p").unwrap();
        let sys = presets::isambard_ai();
        let mut prev = 0.0;
        for param in [8usize, 16, 32, 64] {
            let call = BlasCall {
                kernel: p.dims(param),
                precision: Precision::F32,
                alpha: 1.0,
                beta: 0.0,
            };
            let t = Backend::cpu_seconds(&sys, &call, 1);
            assert!(t > prev, "time grows with the family parameter");
            prev = t;
            assert!(Backend::gpu_seconds(&sys, &call, 1, Offload::TransferOnce).is_some());
        }
    }
}
