//! Structured tracing & profiling: where the time actually goes.
//!
//! The paper's offload-threshold methodology is an accounting argument —
//! CPU kernel time vs. transfer time vs. GPU compute — and this module
//! gives the harness the same per-phase visibility into *itself*. Every
//! layer records **spans**: named, categorised intervals with monotonic
//! nanosecond timestamps, a thread id, a parent link, and optional `u64`
//! key/value annotations (flops, bytes, batch sizes…).
//!
//! ## Design
//!
//! - **Recording is thread-local.** An open span lives on a per-thread
//!   stack; a closed span is appended to a per-thread buffer. No lock is
//!   taken on the record path — completed spans are *published* to a
//!   bounded global sink (oldest dropped first) only when a thread's
//!   span stack empties, i.e. at the end of a root span such as one pool
//!   job or one serve request.
//! - **Disabled means free.** [`span`] checks one relaxed atomic load
//!   and returns an inert guard; the `trace_gate` bench (`blob-bench`)
//!   proves the cost is <1% of the smallest gated GEMM call, exactly
//!   like `fault_gate` does for the fault plane.
//! - **`blob-blas` stays below this crate.** The kernels report their
//!   pool and pack/compute seams through [`blob_blas::tracehook`];
//!   [`enable`] installs closures bridging those hooks to this module.
//!
//! ## Exports
//!
//! [`chrome_trace_json`] renders spans as chrome://tracing "trace event"
//! JSON (load it at `chrome://tracing` or <https://ui.perfetto.dev>);
//! [`profile`]/[`render_profile`] aggregate spans into a per-name table
//! of call counts, total/self time and p50/p99 latencies. Both are
//! reachable from `gpu-blob sweep --trace`, `gpu-blob profile`, and
//! `blob-serve`'s `GET /v1/trace`.

use crate::wire::Json;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock, PoisonError};
use std::time::Instant;

/// Span names recorded by the harness layers of the workspace. The
/// kernel-side names (`pool.*`, `gemm.*`) live in
/// [`blob_blas::tracehook::names`].
pub mod names {
    /// One size measurement inside a sweep (CPU + every GPU transfer
    /// type), on whichever thread runs it.
    pub const SWEEP_SIZE: &str = "sweep.size";
    /// One atomic checkpoint write during a checkpointed sweep.
    pub const CHECKPOINT_SAVE: &str = "checkpoint.save";
    /// One HTTP request handled by `blob-serve`.
    pub const SERVE_REQUEST: &str = "serve.request";
    /// One dispatch-plane routing decision (estimator + hysteresis).
    pub const DISPATCH_DECIDE: &str = "dispatch.decide";
    /// One dispatched call executing on its chosen route.
    pub const DISPATCH_ROUTE: &str = "dispatch.route";
}

/// Span categories used by the harness layers.
pub mod cats {
    /// Sweep-runner spans.
    pub const RUNNER: &str = "runner";
    /// Checkpoint-persistence spans.
    pub const CHECKPOINT: &str = "checkpoint";
    /// HTTP-service spans.
    pub const SERVE: &str = "serve";
    /// Online-dispatch-plane spans.
    pub const DISPATCH: &str = "dispatch";
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Unique span id (1-based; 0 is reserved for "no parent").
    pub id: u64,
    /// Id of the enclosing span on the same thread, 0 for a root span.
    pub parent: u64,
    /// Static span name, e.g. `"gemm.compute"`.
    pub name: &'static str,
    /// Coarse category (`"pool"`, `"gemm"`, `"runner"`, `"serve"`, …).
    pub cat: &'static str,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace-local thread id (1-based, in order of first recording).
    pub tid: u64,
    /// `u64` key/value annotations (flops, bytes, sizes…).
    pub args: Vec<(&'static str, u64)>,
}

struct Open {
    id: u64,
    parent: u64,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
}

struct Local {
    tid: u64,
    stack: Vec<Open>,
    done: Vec<Span>,
}

/// Global sink capacity; once full the oldest spans are dropped (and
/// counted in [`dropped`]).
pub const SINK_CAP: usize = 65_536;

/// A thread publishes its buffer early if this many spans complete
/// before its stack empties, bounding per-thread memory.
const LOCAL_FLUSH: usize = 4_096;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static ID_SEED: AtomicU64 = AtomicU64::new(0x5EED_B10B);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SINK: Mutex<Vec<Span>> = Mutex::new(Vec::new());

/// Serialises tests (and any other caller) that enable/disable the
/// global trace plane, mirroring `fault::CHAOS_LOCK`.
pub static TRACE_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    static LOCAL: RefCell<Local> = const {
        RefCell::new(Local { tid: 0, stack: Vec::new(), done: Vec::new() })
    };
}

/// Nanoseconds since the process-wide trace epoch (first use wins).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Turns span recording on: initialises the epoch, bridges the
/// `blob-blas` trace hooks into this module, and arms every
/// instrumentation point.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    install_blas_hooks();
    blob_blas::tracehook::set_active(true);
    ACTIVE.store(true, Ordering::Release);
}

/// Turns span recording off. Already-recorded spans stay in the sink;
/// spans open at the moment of disabling complete normally.
pub fn disable() {
    ACTIVE.store(false, Ordering::Release);
    blob_blas::tracehook::set_active(false);
}

/// Whether span recording is currently enabled.
pub fn active() -> bool {
    // relaxed: advisory gate read; the span buffer is lock-protected
    ACTIVE.load(Ordering::Relaxed)
}

/// Discards every published span and resets the dropped-span counter.
/// Does not change the enabled/disabled state.
pub fn clear() {
    SINK.lock().unwrap_or_else(PoisonError::into_inner).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// How many spans the bounded sink has dropped (oldest-first) since the
/// last [`clear`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Removes and returns every published span, in publish order.
pub fn take() -> Vec<Span> {
    std::mem::take(&mut *SINK.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Clones the published spans without consuming them (the serve
/// `GET /v1/trace` path).
pub fn snapshot() -> Vec<Span> {
    SINK.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// RAII guard for one span; the span closes when the guard drops.
///
/// Returned by [`span`]. When tracing is disabled the guard is inert
/// and its drop is a branch on a local bool.
#[must_use = "the span closes when the guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Attaches a `u64` key/value annotation to this span. No-op when
    /// the guard is inert.
    pub fn annotate(&self, key: &'static str, value: u64) {
        if self.armed {
            annotate(key, value);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            end();
        }
    }
}

/// Opens a span. The fast path — tracing disabled — is a single relaxed
/// atomic load; `trace_gate` holds it to <1% of the smallest gated GEMM.
#[inline]
pub fn span(name: &'static str, cat: &'static str) -> SpanGuard {
    // relaxed: a stale read drops or opens one span early/late — trace
    // completeness around enable/disable is best-effort by design
    if !ACTIVE.load(Ordering::Relaxed) {
        return SpanGuard { armed: false };
    }
    begin(name, cat);
    SpanGuard { armed: true }
}

/// Raw span-open, the begin half of the hook protocol bridged from
/// [`blob_blas::tracehook`]. Prefer [`span`]; every `begin` must be
/// matched by exactly one [`end`] on the same thread.
pub fn begin(name: &'static str, cat: &'static str) {
    let start_ns = now_ns();
    LOCAL.with(|cell| {
        if let Ok(mut l) = cell.try_borrow_mut() {
            if l.tid == 0 {
                l.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            }
            let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            let parent = l.stack.last().map_or(0, |o| o.id);
            l.stack.push(Open {
                id,
                parent,
                name,
                cat,
                start_ns,
                args: Vec::new(),
            });
        }
    });
}

/// Attaches a `u64` key/value annotation to the innermost open span on
/// this thread, if any.
pub fn annotate(key: &'static str, value: u64) {
    LOCAL.with(|cell| {
        if let Ok(mut l) = cell.try_borrow_mut() {
            if let Some(open) = l.stack.last_mut() {
                open.args.push((key, value));
            }
        }
    });
}

/// Raw span-close: records the innermost open span on this thread and,
/// if the stack emptied, publishes this thread's buffer to the sink.
pub fn end() {
    let end_ns = now_ns();
    LOCAL.with(|cell| {
        if let Ok(mut l) = cell.try_borrow_mut() {
            let tid = l.tid;
            let Some(open) = l.stack.pop() else { return };
            l.done.push(Span {
                id: open.id,
                parent: open.parent,
                name: open.name,
                cat: open.cat,
                start_ns: open.start_ns,
                dur_ns: end_ns.saturating_sub(open.start_ns),
                tid,
                args: open.args,
            });
            if l.stack.is_empty() || l.done.len() >= LOCAL_FLUSH {
                publish(&mut l.done);
            }
        }
    });
}

/// Moves a thread's completed spans into the bounded global sink,
/// dropping the oldest sink entries on overflow.
fn publish(done: &mut Vec<Span>) {
    let mut sink = SINK.lock().unwrap_or_else(PoisonError::into_inner);
    sink.append(done);
    if sink.len() > SINK_CAP {
        let excess = sink.len() - SINK_CAP;
        sink.drain(..excess);
        DROPPED.fetch_add(excess as u64, Ordering::Relaxed);
    }
}

fn install_blas_hooks() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        blob_blas::tracehook::set_hooks(blob_blas::tracehook::Hooks {
            begin: Box::new(begin),
            annotate: Box::new(annotate),
            end: Box::new(end),
        });
    });
}

/// Mints a 16-hex-digit trace id (a splitmix64 step over a shared
/// counter mixed with the monotonic clock — unique within a process,
/// collision-negligible across restarts).
pub fn mint_trace_id() -> String {
    let c = ID_SEED.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let mut z = c ^ now_ns().rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    format!("{z:016x}")
}

/// Renders spans as a chrome://tracing "trace event format" document:
/// one complete (`ph:"X"`) event per span, timestamps in microseconds,
/// span id/parent and annotations under `args`.
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let events: Vec<Json> = spans
        .iter()
        .map(|s| {
            let mut args = Json::obj().field("span_id", s.id).field("parent", s.parent);
            for &(k, v) in &s.args {
                args = args.field(k, v);
            }
            Json::obj()
                .field("name", s.name)
                .field("cat", s.cat)
                .field("ph", "X")
                .field("ts", s.start_ns as f64 / 1e3)
                .field("dur", s.dur_ns as f64 / 1e3)
                .field("pid", 1u64)
                .field("tid", s.tid)
                .field("args", args.build())
                .build()
        })
        .collect();
    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
        .build()
        .encode_pretty()
        + "\n"
}

/// One aggregated row of [`profile`]: all spans sharing a name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name.
    pub name: &'static str,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations (wall time inside the span, children included).
    pub total_ns: u64,
    /// Sum of self times (duration minus direct children's durations).
    pub self_ns: u64,
    /// Median span duration.
    pub p50_ns: u64,
    /// 99th-percentile span duration (nearest-rank on recorded spans).
    pub p99_ns: u64,
}

fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Aggregates spans into per-name totals, self times, and latency
/// quantiles, sorted by total time descending. Self time subtracts each
/// span's *direct* children, so a parent that merely waits on
/// instrumented work shows near-zero self time.
pub fn profile(spans: &[Span]) -> Vec<ProfileRow> {
    let mut child_sum: HashMap<u64, u64> = HashMap::new();
    for s in spans {
        if s.parent != 0 {
            *child_sum.entry(s.parent).or_insert(0) += s.dur_ns;
        }
    }
    let mut by_name: HashMap<&'static str, (u64, u64, u64, Vec<u64>)> = HashMap::new();
    for s in spans {
        let self_ns = s
            .dur_ns
            .saturating_sub(child_sum.get(&s.id).copied().unwrap_or(0));
        let entry = by_name.entry(s.name).or_insert((0, 0, 0, Vec::new()));
        entry.0 += 1;
        entry.1 += s.dur_ns;
        entry.2 += self_ns;
        entry.3.push(s.dur_ns);
    }
    let mut rows: Vec<ProfileRow> = by_name
        .into_iter()
        .map(|(name, (count, total_ns, self_ns, mut durs))| {
            durs.sort_unstable();
            ProfileRow {
                name,
                count,
                total_ns,
                self_ns,
                p50_ns: quantile_ns(&durs, 0.50),
                p99_ns: quantile_ns(&durs, 0.99),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
    rows
}

/// Renders a profile as a fixed-width text table (the `gpu-blob
/// profile` output).
pub fn render_profile(rows: &[ProfileRow]) -> String {
    let mut out = format!(
        "{:<18} {:>8} {:>12} {:>12} {:>11} {:>11}\n",
        "span", "count", "total_ms", "self_ms", "p50_us", "p99_us"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>8} {:>12.3} {:>12.3} {:>11.1} {:>11.1}\n",
            r.name,
            r.count,
            r.total_ns as f64 / 1e6,
            r.self_ns as f64 / 1e6,
            r.p50_ns as f64 / 1e3,
            r.p99_ns as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reset() {
        disable();
        clear();
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _t = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        {
            let g = span(names::SWEEP_SIZE, cats::RUNNER);
            g.annotate("param", 8);
        }
        assert!(take().is_empty());
    }

    #[test]
    fn nested_spans_link_parents_and_publish_at_depth_zero() {
        let _t = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        enable();
        {
            let _outer = span("outer", cats::RUNNER);
            {
                let _inner = span("inner", cats::RUNNER);
            }
            assert!(
                snapshot().is_empty(),
                "spans stay in the thread buffer until the root span closes"
            );
        }
        disable();
        let spans = take();
        clear();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn annotations_attach_to_the_innermost_open_span() {
        let _t = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        enable();
        {
            let outer = span("outer", cats::RUNNER);
            outer.annotate("outer_key", 1);
            let _inner = span("inner", cats::RUNNER);
            annotate("inner_key", 2);
        }
        disable();
        let spans = take();
        clear();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(outer.args, vec![("outer_key", 1)]);
        assert_eq!(inner.args, vec![("inner_key", 2)]);
    }

    #[test]
    fn worker_thread_spans_carry_their_own_tid() {
        let _t = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        reset();
        enable();
        {
            let _main = span("main_root", cats::RUNNER);
        }
        std::thread::spawn(|| {
            let _w = span("worker_root", cats::RUNNER);
        })
        .join()
        .unwrap();
        disable();
        let spans = take();
        clear();
        let main_root = spans.iter().find(|s| s.name == "main_root").unwrap();
        let worker_root = spans.iter().find(|s| s.name == "worker_root").unwrap();
        assert_ne!(main_root.tid, worker_root.tid);
        assert_eq!(worker_root.parent, 0);
    }

    #[test]
    fn chrome_trace_json_is_valid_and_complete() {
        let spans = vec![
            Span {
                id: 1,
                parent: 0,
                name: "sweep.size",
                cat: "runner",
                start_ns: 1_000,
                dur_ns: 5_500,
                tid: 1,
                args: vec![("param", 64)],
            },
            Span {
                id: 2,
                parent: 1,
                name: "gemm.compute",
                cat: "gemm",
                start_ns: 2_000,
                dur_ns: 3_000,
                tid: 1,
                args: vec![],
            },
        ];
        let text = chrome_trace_json(&spans);
        let doc = Json::parse(&text).expect("chrome trace must be valid JSON");
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.get("name").and_then(Json::as_str), Some("sweep.size"));
        assert_eq!(first.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(first.get("ts").and_then(Json::as_f64), Some(1.0));
        assert_eq!(first.get("dur").and_then(Json::as_f64), Some(5.5));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("param"))
                .and_then(Json::as_u64),
            Some(64)
        );
        assert_eq!(
            events[1]
                .get("args")
                .and_then(|a| a.get("parent"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }

    #[test]
    fn profile_subtracts_direct_children_for_self_time() {
        let spans = vec![
            Span {
                id: 1,
                parent: 0,
                name: "parent",
                cat: "runner",
                start_ns: 0,
                dur_ns: 10_000,
                tid: 1,
                args: vec![],
            },
            Span {
                id: 2,
                parent: 1,
                name: "child",
                cat: "runner",
                start_ns: 1_000,
                dur_ns: 4_000,
                tid: 1,
                args: vec![],
            },
            Span {
                id: 3,
                parent: 1,
                name: "child",
                cat: "runner",
                start_ns: 6_000,
                dur_ns: 3_000,
                tid: 1,
                args: vec![],
            },
        ];
        let rows = profile(&spans);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "parent");
        assert_eq!(rows[0].total_ns, 10_000);
        assert_eq!(rows[0].self_ns, 3_000);
        assert_eq!(rows[1].name, "child");
        assert_eq!(rows[1].count, 2);
        assert_eq!(rows[1].total_ns, 7_000);
        assert_eq!(rows[1].self_ns, 7_000);
        assert_eq!(rows[1].p50_ns, 4_000);
        let table = render_profile(&rows);
        assert!(table.contains("parent"));
        assert!(table.contains("p99_us"));
    }

    #[test]
    fn trace_ids_are_sixteen_hex_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_ne!(a, b);
    }
}
