//! Crash-safe sweep checkpoints: bit-exact persistence for `--resume`.
//!
//! A long sweep killed mid-run (OOM killer, wall-clock limit, node
//! failure) must be resumable *without* changing its results file: the
//! chaos suite asserts a killed-and-resumed sweep is byte-identical to
//! an uninterrupted one. JSON's decimal floats cannot guarantee that
//! (`blob_core::wire` stores `f64` and rounds on format), so every
//! measured `f64` is persisted as its exact bit pattern in hex; the
//! surrounding envelope is ordinary [`wire`](crate::wire) JSON.
//!
//! Checkpoints are written atomically ([`crate::atomicio`]) after every
//! measured size, so the file on disk is always a complete, parseable
//! prefix of the sweep — never a torn write.

use crate::atomicio::write_atomic;
use crate::fault;
use crate::problem::Problem;
use crate::runner::{GpuSample, SizeRecord, SweepConfig};
use crate::wire::Json;
use blob_sim::{Kernel, Offload, Precision};
use std::path::Path;

/// Current checkpoint format version.
pub const VERSION: u64 = 1;

/// A sweep checkpoint: the identifying key plus every record measured
/// so far, in sweep order.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Backend (system) name the sweep runs on.
    pub system: String,
    /// Problem type being swept.
    pub problem: Problem,
    /// Element precision.
    pub precision: Precision,
    /// Iteration count of each timed loop.
    pub iterations: u32,
    /// Sweep range and stride (the rest of the key).
    pub min_dim: usize,
    /// Maximum dimension of the sweep.
    pub max_dim: usize,
    /// Stride over the size parameter.
    pub step: usize,
    /// α of every call, bit-exact.
    pub alpha: f64,
    /// β of every call, bit-exact.
    pub beta: f64,
    /// True once the sweep finished; a complete checkpoint resumes to an
    /// immediate return of its records.
    pub complete: bool,
    /// Records measured so far, a prefix of the sweep's size list.
    pub records: Vec<SizeRecord>,
}

/// Error from loading or parsing a checkpoint file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(String),
    /// The file was not a valid checkpoint document.
    Parse(String),
    /// The checkpoint's key does not match the requested sweep.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint parse: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn bits(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

fn from_bits(j: &Json, what: &str) -> Result<f64, CheckpointError> {
    let s = j
        .as_str()
        .ok_or_else(|| CheckpointError::Parse(format!("{what}: expected hex-bits string")))?;
    let raw = u64::from_str_radix(s, 16)
        .map_err(|_| CheckpointError::Parse(format!("{what}: bad hex bits {s:?}")))?;
    Ok(f64::from_bits(raw))
}

fn get_u64(doc: &Json, field: &str) -> Result<u64, CheckpointError> {
    doc.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| CheckpointError::Parse(format!("missing or non-integer `{field}`")))
}

fn get_str<'a>(doc: &'a Json, field: &str) -> Result<&'a str, CheckpointError> {
    doc.get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| CheckpointError::Parse(format!("missing or non-string `{field}`")))
}

fn kernel_to_json(k: &Kernel) -> Json {
    match *k {
        Kernel::Gemm { m, n, k } => Json::obj()
            .field("kind", "gemm")
            .field("m", m as u64)
            .field("n", n as u64)
            .field("k", k as u64)
            .build(),
        Kernel::Gemv { m, n } => Json::obj()
            .field("kind", "gemv")
            .field("m", m as u64)
            .field("n", n as u64)
            .build(),
    }
}

fn kernel_from_json(j: &Json) -> Result<Kernel, CheckpointError> {
    let kind = get_str(j, "kind")?;
    let m = get_u64(j, "m")? as usize;
    let n = get_u64(j, "n")? as usize;
    match kind {
        "gemm" => Ok(Kernel::Gemm {
            m,
            n,
            k: get_u64(j, "k")? as usize,
        }),
        "gemv" => Ok(Kernel::Gemv { m, n }),
        other => Err(CheckpointError::Parse(format!(
            "unknown kernel kind {other:?}"
        ))),
    }
}

fn record_to_json(r: &SizeRecord) -> Json {
    let gpu: Vec<Json> = r
        .gpu
        .iter()
        .map(|g| {
            Json::obj()
                .field("offload", g.offload.label())
                .field("seconds_bits", bits(g.seconds))
                .field("gflops_bits", bits(g.gflops))
                .build()
        })
        .collect();
    Json::obj()
        .field("param", r.param as u64)
        .field("kernel", kernel_to_json(&r.kernel))
        .field("cpu_seconds_bits", bits(r.cpu_seconds))
        .field("cpu_gflops_bits", bits(r.cpu_gflops))
        .field("gpu", Json::Arr(gpu))
        .build()
}

fn record_from_json(j: &Json) -> Result<SizeRecord, CheckpointError> {
    let gpu_items = j
        .get("gpu")
        .and_then(Json::as_arr)
        .ok_or_else(|| CheckpointError::Parse("record missing `gpu` array".to_string()))?;
    let mut gpu = Vec::with_capacity(gpu_items.len());
    for g in gpu_items {
        let label = get_str(g, "offload")?;
        let offload: Offload = label
            .parse()
            .map_err(|e: String| CheckpointError::Parse(e))?;
        gpu.push(GpuSample {
            offload,
            seconds: from_bits(g.get("seconds_bits").unwrap_or(&Json::Null), "gpu seconds")?,
            gflops: from_bits(g.get("gflops_bits").unwrap_or(&Json::Null), "gpu gflops")?,
        });
    }
    Ok(SizeRecord {
        param: get_u64(j, "param")? as usize,
        kernel: kernel_from_json(
            j.get("kernel")
                .ok_or_else(|| CheckpointError::Parse("record missing `kernel`".to_string()))?,
        )?,
        cpu_seconds: from_bits(
            j.get("cpu_seconds_bits").unwrap_or(&Json::Null),
            "cpu seconds",
        )?,
        cpu_gflops: from_bits(
            j.get("cpu_gflops_bits").unwrap_or(&Json::Null),
            "cpu gflops",
        )?,
        gpu,
    })
}

impl Checkpoint {
    /// An empty checkpoint keyed to one sweep.
    pub fn new(system: &str, problem: Problem, precision: Precision, cfg: &SweepConfig) -> Self {
        Self {
            system: system.to_string(),
            problem,
            precision,
            iterations: cfg.iterations().max(1),
            min_dim: cfg.min_dim(),
            max_dim: cfg.max_dim(),
            step: cfg.step(),
            alpha: cfg.alpha(),
            beta: cfg.beta(),
            complete: false,
            records: Vec::new(),
        }
    }

    /// Whether this checkpoint belongs to the given sweep. Bit-exact on
    /// α/β — resuming under a different scalar would splice incompatible
    /// measurements into one results file.
    pub fn matches(
        &self,
        system: &str,
        problem: Problem,
        precision: Precision,
        cfg: &SweepConfig,
    ) -> bool {
        self.system == system
            && self.problem == problem
            && self.precision == precision
            && self.iterations == cfg.iterations().max(1)
            && self.min_dim == cfg.min_dim()
            && self.max_dim == cfg.max_dim()
            && self.step == cfg.step()
            && self.alpha.to_bits() == cfg.alpha().to_bits()
            && self.beta.to_bits() == cfg.beta().to_bits()
    }

    /// Serialises the checkpoint to its JSON document.
    pub fn to_json_string(&self) -> String {
        let records: Vec<Json> = self.records.iter().map(record_to_json).collect();
        Json::obj()
            .field("version", VERSION)
            .field("system", self.system.as_str())
            .field("problem", self.problem.id())
            .field("precision", crate::wire::precision_key(self.precision))
            .field("iterations", u64::from(self.iterations))
            .field("min_dim", self.min_dim as u64)
            .field("max_dim", self.max_dim as u64)
            .field("step", self.step as u64)
            .field("alpha_bits", bits(self.alpha))
            .field("beta_bits", bits(self.beta))
            .field("complete", self.complete)
            .field("records", Json::Arr(records))
            .build()
            .encode_pretty()
            + "\n"
    }

    /// Parses a checkpoint document.
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        let doc = Json::parse(text).map_err(|e| CheckpointError::Parse(format!("{e:?}")))?;
        let version = get_u64(&doc, "version")?;
        if version != VERSION {
            return Err(CheckpointError::Parse(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let problem_id = get_str(&doc, "problem")?;
        let problem = crate::wire::parse_problem_id(problem_id)
            .ok_or_else(|| CheckpointError::Parse(format!("unknown problem {problem_id:?}")))?;
        let record_items = doc
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| CheckpointError::Parse("missing `records` array".to_string()))?;
        let mut records = Vec::with_capacity(record_items.len());
        for r in record_items {
            records.push(record_from_json(r)?);
        }
        Ok(Self {
            system: get_str(&doc, "system")?.to_string(),
            problem,
            precision: {
                let s = get_str(&doc, "precision")?;
                crate::wire::parse_precision(s)
                    .ok_or_else(|| CheckpointError::Parse(format!("unknown precision {s:?}")))?
            },
            iterations: get_u64(&doc, "iterations")? as u32,
            min_dim: get_u64(&doc, "min_dim")? as usize,
            max_dim: get_u64(&doc, "max_dim")? as usize,
            step: get_u64(&doc, "step")? as usize,
            alpha: from_bits(doc.get("alpha_bits").unwrap_or(&Json::Null), "alpha")?,
            beta: from_bits(doc.get("beta_bits").unwrap_or(&Json::Null), "beta")?,
            complete: doc.get("complete").and_then(Json::as_bool).unwrap_or(false),
            records,
        })
    }

    /// Writes the checkpoint atomically (via [`crate::atomicio`]); the
    /// `checkpoint.write` fault point can inject an I/O failure here.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        fault::point(fault::sites::CHECKPOINT_WRITE)
            .map_err(|e| CheckpointError::Io(e.to_string()))?;
        write_atomic(path, self.to_json_string().as_bytes())
            .map_err(|e| CheckpointError::Io(e.to_string()))
    }

    /// Loads and parses a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GemmProblem;
    use crate::runner::run_sweep;
    use blob_sim::presets;

    fn sample() -> Checkpoint {
        let cfg = SweepConfig::new(1, 9, 2).with_step(2);
        let sweep = run_sweep(
            &presets::dawn(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        let mut ck = Checkpoint::new("DAWN", sweep.problem, sweep.precision, &cfg);
        ck.records = sweep.records;
        ck
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let ck = sample();
        let parsed = Checkpoint::parse(&ck.to_json_string()).unwrap();
        assert_eq!(parsed, ck);
        for (a, b) in parsed.records.iter().zip(&ck.records) {
            assert_eq!(a.cpu_seconds.to_bits(), b.cpu_seconds.to_bits());
            for (ga, gb) in a.gpu.iter().zip(&b.gpu) {
                assert_eq!(ga.seconds.to_bits(), gb.seconds.to_bits());
                assert_eq!(ga.gflops.to_bits(), gb.gflops.to_bits());
            }
        }
    }

    #[test]
    fn extreme_floats_survive() {
        let mut ck = sample();
        ck.records[0].cpu_seconds = f64::MIN_POSITIVE;
        ck.records[0].cpu_gflops = 1.0 + f64::EPSILON;
        ck.alpha = -0.0;
        let parsed = Checkpoint::parse(&ck.to_json_string()).unwrap();
        assert_eq!(
            parsed.records[0].cpu_seconds.to_bits(),
            f64::MIN_POSITIVE.to_bits()
        );
        assert_eq!(
            parsed.records[0].cpu_gflops.to_bits(),
            (1.0 + f64::EPSILON).to_bits()
        );
        assert_eq!(parsed.alpha.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn matches_rejects_different_sweeps() {
        let ck = sample();
        let cfg = SweepConfig::new(1, 9, 2).with_step(2);
        assert!(ck.matches(
            "DAWN",
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg
        ));
        assert!(!ck.matches(
            "LUMI",
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg
        ));
        assert!(!ck.matches(
            "DAWN",
            Problem::Gemm(GemmProblem::Square),
            Precision::F64,
            &cfg
        ));
        let other = SweepConfig::new(1, 10, 2).with_step(2);
        assert!(!ck.matches(
            "DAWN",
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &other
        ));
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("blob_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ck.json");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            Checkpoint::parse("not json"),
            Err(CheckpointError::Parse(_))
        ));
        assert!(matches!(
            Checkpoint::parse("{\"version\": 99}"),
            Err(CheckpointError::Parse(_))
        ));
    }
}
