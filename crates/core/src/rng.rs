//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! The container this project builds in has no network access, so external
//! crates like `rand` are off the table.  Everything that needs randomness —
//! checksum validation inputs, property tests, the thread-pool stress
//! harness — goes through this xorshift64* generator instead.  It is fast,
//! has a full 2^64-1 period, and (critically for reproducing failures) is
//! seeded explicitly everywhere it is used.

/// A deterministic xorshift64* PRNG.
///
/// Not cryptographically secure; intended for test data, validation inputs
/// and schedule perturbation only.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed.
    ///
    /// The raw seed is first run through a SplitMix64 scramble so that
    /// small consecutive seeds (0, 1, 2, …) produce uncorrelated streams,
    /// and the all-zero state (which would be a fixed point of xorshift)
    /// can never occur.
    pub fn new(seed: u64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32-bit value (upper half of the 64-bit output, which has the
    /// better statistical quality for xorshift* generators).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits / 2^53.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[lo, hi)`.  `hi` must be greater than `lo`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo, "range_usize requires hi > lo");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Fair coin flip.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fork an independent generator (e.g. one per test case) without
    /// correlating it with the parent stream.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }
}

/// Fill a slice with uniform values in `[-1, 1)`, matching the value
/// distribution the original `rand`-based harness used for checksum inputs.
pub fn fill_uniform(rng: &mut XorShift64, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = rng.range_f64(-1.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(0);
        let mut b = XorShift64::new(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "consecutive seeds must not correlate");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = XorShift64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
        }
    }

    #[test]
    fn range_usize_bounds() {
        let mut rng = XorShift64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            let x = rng.range_usize(3, 8);
            assert!((3..8).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 7;
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = XorShift64::new(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.range_f64(-1.0, 1.0)).sum();
        let mean = sum / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean} too far from 0");
    }
}
