//! Execution backends: where a benchmarked BLAS call's timing comes from.
//!
//! GPU-BLOB-rs can time a call two ways:
//!
//! - [`SystemModel`] (from `blob-sim`) — the calibrated analytical model of
//!   a paper system. Deterministic; regenerates the paper's tables.
//! - [`HostCpu`] — *real* wall-clock measurement of this crate's own BLAS
//!   kernels on the machine running the benchmark. CPU-only (this
//!   environment has no GPU; see DESIGN.md §1), so sweeps report CPU
//!   performance and no offload thresholds.
//!
//! Both implement [`Backend`], so the runner, threshold detector, CSV
//! writer and plots are agnostic to the timing source — exactly how the C++
//! artifact separates kernel drivers from its harness.

use blob_blas::{gemm_parallel, gemv_parallel};
use blob_sim::{BlasCall, Kernel, Offload, Precision, SystemModel};
use std::time::Instant;

/// A source of CPU and GPU timings for BLAS calls.
pub trait Backend {
    /// Identifier used in CSV output and table headers.
    fn name(&self) -> String;
    /// Total CPU seconds for `iters` iterations of `call`.
    fn cpu_seconds(&self, call: &BlasCall, iters: u32) -> f64;
    /// Total GPU seconds (including data movement) for `iters` iterations
    /// under `offload`, or `None` when no GPU is available.
    fn gpu_seconds(&self, call: &BlasCall, iters: u32, offload: Offload) -> Option<f64>;
    /// The offload strategies this backend can time.
    fn offloads(&self) -> Vec<Offload> {
        if self
            .gpu_seconds(
                &BlasCall::gemm(Precision::F32, 2, 2, 2),
                1,
                Offload::TransferOnce,
            )
            .is_some()
        {
            Offload::ALL.to_vec()
        } else {
            vec![]
        }
    }
}

impl Backend for SystemModel {
    fn name(&self) -> String {
        self.name.to_string()
    }
    fn cpu_seconds(&self, call: &BlasCall, iters: u32) -> f64 {
        SystemModel::cpu_seconds(self, call, iters)
    }
    fn gpu_seconds(&self, call: &BlasCall, iters: u32, offload: Offload) -> Option<f64> {
        SystemModel::gpu_seconds(self, call, iters, offload)
    }
}

/// Real wall-clock measurement of this repo's BLAS kernels on the host CPU.
#[derive(Debug, Clone)]
pub struct HostCpu {
    /// Worker threads for the parallel kernels.
    pub threads: usize,
    /// Timed-region repetitions to average over (the artifact averages
    /// three runs per configuration).
    pub repeats: u32,
}

impl Default for HostCpu {
    fn default() -> Self {
        Self {
            threads: blob_blas::pool::available_threads(),
            repeats: 1,
        }
    }
}

impl HostCpu {
    /// A host backend with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            repeats: 1,
        }
    }

    fn run_once<T: blob_blas::Scalar>(&self, call: &BlasCall, iters: u32) -> f64 {
        let alpha = T::from_f64(call.alpha);
        let beta = T::from_f64(call.beta);
        match call.kernel {
            Kernel::Gemm { m, n, k } => {
                let a = vec![T::from_f64(0.5); m.max(1) * k.max(1)];
                let b = vec![T::from_f64(0.25); k.max(1) * n.max(1)];
                let mut c = vec![T::ZERO; m.max(1) * n.max(1)];
                let start = Instant::now();
                for _ in 0..iters {
                    // Buffers are sized to the call right above, so the
                    // contract holds by construction.
                    let _ = gemm_parallel(
                        self.threads,
                        m,
                        n,
                        k,
                        alpha,
                        &a,
                        m.max(1),
                        &b,
                        k.max(1),
                        beta,
                        &mut c,
                        m.max(1),
                    );
                }
                let t = start.elapsed().as_secs_f64();
                std::hint::black_box(&c);
                t
            }
            Kernel::Gemv { m, n } => {
                let a = vec![T::from_f64(0.5); m.max(1) * n.max(1)];
                let x = vec![T::from_f64(0.25); n.max(1)];
                let mut y = vec![T::ZERO; m.max(1)];
                let start = Instant::now();
                for _ in 0..iters {
                    // Tight layout built above; the contract holds by
                    // construction.
                    let _ = gemv_parallel(
                        self.threads,
                        m,
                        n,
                        alpha,
                        &a,
                        m.max(1),
                        &x,
                        1,
                        beta,
                        &mut y,
                        1,
                    );
                }
                let t = start.elapsed().as_secs_f64();
                std::hint::black_box(&y);
                t
            }
        }
    }
}

impl Backend for HostCpu {
    fn name(&self) -> String {
        format!("host-cpu ({} threads)", self.threads)
    }

    fn cpu_seconds(&self, call: &BlasCall, iters: u32) -> f64 {
        let reps = self.repeats.max(1);
        let mut total = 0.0;
        for _ in 0..reps {
            total += match call.precision {
                Precision::F32 => self.run_once::<f32>(call, iters),
                Precision::F64 => self.run_once::<f64>(call, iters),
            };
        }
        total / reps as f64
    }

    fn gpu_seconds(&self, _call: &BlasCall, _iters: u32, _offload: Offload) -> Option<f64> {
        None // no GPU on the host; modelled systems provide GPU timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_sim::presets;

    #[test]
    fn system_model_backend_round_trip() {
        let sys = presets::dawn();
        let call = BlasCall::gemm(Precision::F32, 64, 64, 64);
        let b: &dyn Backend = &sys;
        assert_eq!(b.name(), "DAWN");
        assert!(b.cpu_seconds(&call, 1) > 0.0);
        assert!(b.gpu_seconds(&call, 1, Offload::TransferOnce).is_some());
        assert_eq!(b.offloads().len(), 3);
    }

    #[test]
    fn cpu_only_system_reports_no_offloads() {
        let sys = presets::isambard_ai_armpl();
        let b: &dyn Backend = &sys;
        assert!(b.offloads().is_empty());
    }

    #[test]
    fn host_backend_measures_real_time() {
        let host = HostCpu::with_threads(1);
        let call = BlasCall::gemm(Precision::F64, 64, 64, 64);
        let t1 = host.cpu_seconds(&call, 1);
        let t4 = host.cpu_seconds(&call, 4);
        assert!(t1 > 0.0);
        // 4 iterations take longer than 1 (wall-clock is noisy, so only a
        // weak monotonicity check)
        assert!(t4 > t1 * 1.5, "t1={t1}, t4={t4}");
        assert!(host.gpu_seconds(&call, 1, Offload::TransferOnce).is_none());
        assert!(host.offloads().is_empty());
    }

    #[test]
    fn host_backend_times_gemv() {
        let host = HostCpu::with_threads(2);
        let call = BlasCall::gemv(Precision::F32, 256, 256);
        assert!(host.cpu_seconds(&call, 2) > 0.0);
    }
}
