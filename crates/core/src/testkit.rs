//! Minimal property-testing helper.
//!
//! A small, dependency-free stand-in for `proptest`: generators are plain
//! closures over [`XorShift64`](crate::rng::XorShift64), and [`forall`] runs
//! a property over a fixed number of seeded cases.  There is no shrinking —
//! instead every failure message reports the case index and the derived
//! seed, so a failing case can be replayed exactly with
//! [`run_case`].
//!
//! ```
//! use blob_core::testkit::{forall, Config};
//!
//! forall(Config::default().cases(64), |g| {
//!     let n = g.usize_in(0, 100);
//!     let xs: Vec<f64> = (0..n).map(|_| g.f64_in(-1.0, 1.0)).collect();
//!     let sum: f64 = xs.iter().sum();
//!     assert!(sum.is_finite());
//! });
//! ```

use crate::rng::XorShift64;

/// How a [`forall`] run is driven.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; each case derives its own seed from this.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: 256,
            seed: 0x5EED_u64,
        }
    }
}

impl Config {
    /// Override the number of cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Override the base seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Per-case source of random values handed to the property closure.
pub struct Gen {
    rng: XorShift64,
    /// Seed this case was created from (for replay in failure messages).
    pub case_seed: u64,
}

impl Gen {
    /// Build a generator for one specific case seed.
    pub fn from_seed(case_seed: u64) -> Self {
        Self {
            rng: XorShift64::new(case_seed),
            case_seed,
        }
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive on both ends, like
    /// proptest's `lo..=hi` ranges the original tests used).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi >= lo);
        self.rng.range_usize(lo, hi + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.range_f64(lo, hi)
    }

    /// Raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Boolean with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.chance(p)
    }

    /// A vector of `len` uniform values in `[lo, hi)`.
    pub fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        debug_assert!(!options.is_empty());
        &options[self.rng.range_usize(0, options.len())]
    }
}

/// Derive the seed for case `i` of a run configured with `base`.
fn case_seed(base: u64, i: u32) -> u64 {
    base.wrapping_mul(0x0100_0000_01B3)
        .wrapping_add(u64::from(i))
}

/// Run `property` over `config.cases` generated cases.
///
/// The property signals failure by panicking (plain `assert!` works).  On
/// failure the panic is re-raised with the case index and seed prepended,
/// so the exact case can be re-run in isolation via [`run_case`].
pub fn forall<F>(config: Config, property: F)
where
    F: Fn(&mut Gen) + std::panic::RefUnwindSafe,
{
    for i in 0..config.cases {
        let seed = case_seed(config.seed, i);
        let outcome = std::panic::catch_unwind(|| {
            let mut g = Gen::from_seed(seed);
            property(&mut g);
        });
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            // blob-check: allow(no-unwrap-in-lib): panicking is this harness's contract — it is how property failures reach the test runner
            panic!(
                "property failed at case {i}/{} (replay with testkit::run_case({seed:#x}, ..)): {msg}",
                config.cases
            );
        }
    }
}

/// Replay a single case by seed — use the seed printed by a [`forall`]
/// failure to debug it deterministically.
pub fn run_case<F>(seed: u64, property: F)
where
    F: FnOnce(&mut Gen),
{
    let mut g = Gen::from_seed(seed);
    property(&mut g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_passes_trivial_property() {
        forall(Config::default().cases(32), |g| {
            let x = g.f64_in(0.0, 1.0);
            assert!((0.0..1.0).contains(&x));
        });
    }

    #[test]
    fn forall_reports_case_and_seed_on_failure() {
        let result = std::panic::catch_unwind(|| {
            forall(Config::default().cases(16).seed(99), |g| {
                let n = g.usize_in(0, 10);
                assert!(n < 100, "never fires");
                if n > 3 {
                    panic!("boom at n={n}");
                }
            });
        });
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .expect("forall panics with a String");
        assert!(msg.contains("property failed at case"), "got: {msg}");
        assert!(msg.contains("run_case"), "got: {msg}");
        assert!(msg.contains("boom"), "got: {msg}");
    }

    #[test]
    fn run_case_replays_exact_values() {
        let mut first = None;
        run_case(0xDEAD_BEEF, |g| first = Some(g.u64()));
        let mut second = None;
        run_case(0xDEAD_BEEF, |g| second = Some(g.u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn usize_in_is_inclusive() {
        forall(Config::default().cases(200), |g| {
            let x = g.usize_in(5, 5);
            assert_eq!(x, 5);
            let y = g.usize_in(0, 1);
            assert!(y <= 1);
        });
    }
}
