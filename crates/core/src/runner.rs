//! The benchmark runner: sweeps every problem size of a problem type on a
//! backend and records CPU and GPU performance, exactly the measurement
//! loop the paper's artifact performs (CPU then GPU per size, interleaved,
//! §III).

use crate::backend::Backend;
use crate::problem::Problem;
use crate::threshold::{offload_threshold_index, ThresholdPoint};
use blob_sim::{BlasCall, Kernel, Offload, Precision};

pub use blob_blas::ThreadPool;
use std::sync::{Arc, Mutex};

/// Sweep configuration: the artifact's `-s`, `-d`, `-i` arguments plus a
/// stride for coarse sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Minimum dimension (`-s`), default 1.
    pub min_dim: usize,
    /// Maximum dimension (`-d`), default 4096.
    pub max_dim: usize,
    /// Iteration count (`-i`).
    pub iterations: u32,
    /// Stride over the size parameter; 1 sweeps every size like the paper.
    pub step: usize,
    /// α for every call (default 1).
    pub alpha: f64,
    /// β for every call (default 0, the artifact's configuration).
    pub beta: f64,
}

impl SweepConfig {
    /// The paper's configuration: `-s 1 -d 4096`, α=1, β=0.
    pub fn paper(iterations: u32) -> Self {
        Self {
            min_dim: 1,
            max_dim: 4096,
            iterations,
            step: 1,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// A configuration with a custom dimension range.
    pub fn new(min_dim: usize, max_dim: usize, iterations: u32) -> Self {
        Self {
            min_dim,
            max_dim,
            iterations,
            step: 1,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Sets the sweep stride (coarser = faster).
    pub fn with_step(mut self, step: usize) -> Self {
        self.step = step.max(1);
        self
    }

    /// The iteration counts the paper evaluates.
    pub const PAPER_ITERATIONS: [u32; 5] = [1, 8, 32, 64, 128];
}

/// One GPU timing at one problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSample {
    /// Offload strategy this sample used.
    pub offload: Offload,
    /// Total measured seconds for the configured iterations.
    pub seconds: f64,
    /// Achieved GFLOP/s (paper FLOPs formula).
    pub gflops: f64,
}

/// Everything measured at one problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRecord {
    /// The size parameter `p` that generated these dimensions.
    pub param: usize,
    /// Concrete kernel dimensions.
    pub kernel: Kernel,
    /// Total CPU seconds for the configured iterations.
    pub cpu_seconds: f64,
    /// Achieved CPU GFLOP/s (paper FLOPs formula).
    pub cpu_gflops: f64,
    /// GPU samples, one per offload strategy (empty on CPU-only backends).
    pub gpu: Vec<GpuSample>,
}

impl SizeRecord {
    /// The GPU sample for a given offload strategy, if measured.
    pub fn gpu_sample(&self, offload: Offload) -> Option<&GpuSample> {
        self.gpu.iter().find(|g| g.offload == offload)
    }
}

/// A completed sweep of one (problem type, precision, iteration count).
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Backend name (system).
    pub system: String,
    /// Problem type swept.
    pub problem: Problem,
    /// Element precision of every measurement.
    pub precision: Precision,
    /// Iteration count of each timed loop.
    pub iterations: u32,
    /// One record per size parameter, in sweep order.
    pub records: Vec<SizeRecord>,
}

impl Sweep {
    /// The offload threshold for `offload`: concrete dimensions of the
    /// first size from which the GPU durably wins, or `None` (the paper's
    /// `—`). Also `None` when the backend measured no GPU.
    pub fn threshold(&self, offload: Offload) -> Option<Kernel> {
        let points: Option<Vec<ThresholdPoint>> = self
            .records
            .iter()
            .map(|r| {
                r.gpu_sample(offload).map(|g| ThresholdPoint {
                    cpu_seconds: r.cpu_seconds,
                    gpu_seconds: g.seconds,
                })
            })
            .collect();
        let points = points?;
        offload_threshold_index(&points).map(|i| self.records[i].kernel)
    }

    /// CPU GFLOP/s series (for plotting).
    pub fn cpu_series(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .map(|r| (r.param, r.cpu_gflops))
            .collect()
    }

    /// GPU GFLOP/s series for one offload strategy.
    pub fn gpu_series(&self, offload: Offload) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.gpu_sample(offload).map(|g| (r.param, g.gflops)))
            .collect()
    }
}

/// Builds the call for one problem size under a sweep configuration.
pub fn call_for(problem: Problem, precision: Precision, p: usize, cfg: &SweepConfig) -> BlasCall {
    let kernel = problem.dims(p);
    BlasCall {
        kernel,
        precision,
        alpha: cfg.alpha,
        beta: cfg.beta,
    }
}

/// Runs a full sweep of `problem` at `precision` on `backend`.
///
/// For every size parameter in range, the CPU is timed and then each
/// available offload strategy is timed on the GPU — the artifact's
/// interleaved collection order.
pub fn run_sweep(
    backend: &dyn Backend,
    problem: Problem,
    precision: Precision,
    cfg: &SweepConfig,
) -> Sweep {
    let offloads = backend.offloads();
    let iters = cfg.iterations.max(1);
    let records = problem
        .params(cfg.min_dim, cfg.max_dim, cfg.step)
        .into_iter()
        .map(|p| measure_size(backend, problem, precision, p, cfg, iters, &offloads))
        .collect();
    Sweep {
        system: backend.name(),
        problem,
        precision,
        iterations: iters,
        records,
    }
}

/// Measures one problem size: CPU, then each offload strategy — the
/// artifact's interleaved collection order.
fn measure_size(
    backend: &dyn Backend,
    problem: Problem,
    precision: Precision,
    p: usize,
    cfg: &SweepConfig,
    iters: u32,
    offloads: &[Offload],
) -> SizeRecord {
    let call = call_for(problem, precision, p, cfg);
    let cpu_seconds = backend.cpu_seconds(&call, iters);
    let total_flops = iters as f64 * call.paper_flops();
    let cpu_gflops = total_flops / cpu_seconds / 1e9;
    let gpu = offloads
        .iter()
        .filter_map(|&o| {
            backend.gpu_seconds(&call, iters, o).map(|s| GpuSample {
                offload: o,
                seconds: s,
                gflops: total_flops / s / 1e9,
            })
        })
        .collect();
    SizeRecord {
        param: p,
        kernel: call.kernel,
        cpu_seconds,
        cpu_gflops,
        gpu,
    }
}

/// [`run_sweep`], with the per-size measurement loop fanned out over a
/// persistent [`ThreadPool`] in contiguous chunks. The returned [`Sweep`]
/// is **identical** to the serial one — records stay in sweep order and
/// each size is measured exactly once.
///
/// Only meaningful for *model-evaluating* backends ([`blob_sim`]'s
/// analytic `SystemModel`s), whose "timings" are pure functions of the
/// call. A wall-clock backend (e.g. `HostCpu`) must keep using
/// [`run_sweep`]: concurrent timed measurements contend for the cores
/// being measured and corrupt each other's numbers.
pub fn run_sweep_pooled<B>(
    backend: Arc<B>,
    problem: Problem,
    precision: Precision,
    cfg: &SweepConfig,
    pool: &ThreadPool,
) -> Sweep
where
    B: Backend + Send + Sync + 'static,
{
    let params = problem.params(cfg.min_dim, cfg.max_dim, cfg.step);
    let workers = pool.threads().min(params.len());
    if workers <= 1 {
        return run_sweep(backend.as_ref(), problem, precision, cfg);
    }
    let offloads = backend.offloads();
    let iters = cfg.iterations.max(1);
    let cfg = *cfg;
    let slots: Arc<Mutex<Vec<Option<SizeRecord>>>> = Arc::new(Mutex::new(vec![None; params.len()]));
    let per = params.len().div_ceil(workers);
    let mut batch = pool.batch();
    for (chunk_idx, chunk) in params.chunks(per).enumerate() {
        let chunk = chunk.to_vec();
        let backend = Arc::clone(&backend);
        let slots = Arc::clone(&slots);
        let offloads = offloads.clone();
        let base = chunk_idx * per;
        batch.submit(move || {
            for (j, p) in chunk.into_iter().enumerate() {
                let rec = measure_size(
                    backend.as_ref(),
                    problem,
                    precision,
                    p,
                    &cfg,
                    iters,
                    &offloads,
                );
                let mut s = slots
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                s[base + j] = Some(rec);
            }
        });
    }
    batch.wait();
    // The batch barrier guarantees every slot was filled; `flatten` is the
    // panic-free way to say so.
    let mut s = slots
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let records = std::mem::take(&mut *s).into_iter().flatten().collect();
    Sweep {
        system: backend.name(),
        problem,
        precision,
        iterations: iters,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GemmProblem, GemvProblem};
    use blob_sim::presets;

    #[test]
    fn sweep_covers_requested_sizes() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 64, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert_eq!(sweep.records.len(), 64);
        assert_eq!(sweep.records[0].param, 1);
        assert_eq!(sweep.records.last().unwrap().param, 64);
        for r in &sweep.records {
            assert!(r.cpu_seconds > 0.0);
            assert_eq!(r.gpu.len(), 3, "three offload strategies per size");
            assert!(r.cpu_gflops > 0.0);
        }
    }

    #[test]
    fn cpu_only_backend_yields_no_gpu_samples_or_thresholds() {
        let sys = presets::isambard_ai_armpl();
        let cfg = SweepConfig::new(1, 32, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemv(GemvProblem::Square),
            Precision::F64,
            &cfg,
        );
        assert!(sweep.records.iter().all(|r| r.gpu.is_empty()));
        assert_eq!(sweep.threshold(Offload::TransferOnce), None);
    }

    #[test]
    fn gflops_respects_paper_formula() {
        let sys = presets::lumi();
        let cfg = SweepConfig::new(10, 10, 4);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F64,
            &cfg,
        );
        let r = &sweep.records[0];
        let call = BlasCall::gemm(Precision::F64, 10, 10, 10);
        let expect = 4.0 * call.paper_flops() / r.cpu_seconds / 1e9;
        assert!((r.cpu_gflops - expect).abs() < 1e-9);
    }

    #[test]
    fn thresholds_map_to_kernel_dims() {
        // Isambard square GEMM has a small stable threshold; whatever the
        // exact value, the returned dims must be square and in range.
        let sys = presets::isambard_ai();
        let cfg = SweepConfig::new(1, 256, 8);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        if let Some(Kernel::Gemm { m, n, k }) = sweep.threshold(Offload::TransferOnce) {
            assert_eq!(m, n);
            assert_eq!(n, k);
            assert!((1..=256).contains(&m));
        } else {
            panic!("expected a square-GEMM threshold on Isambard-AI");
        }
    }

    #[test]
    fn series_extraction() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 16, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert_eq!(sweep.cpu_series().len(), 16);
        assert_eq!(sweep.gpu_series(Offload::Unified).len(), 16);
        assert!(sweep
            .gpu_series(Offload::TransferOnce)
            .iter()
            .all(|&(_, g)| g > 0.0));
    }

    #[test]
    fn pooled_sweep_is_identical_to_serial() {
        let sys = Arc::new(presets::dawn());
        let cfg = SweepConfig::new(1, 97, 2).with_step(3);
        let problem = Problem::Gemm(GemmProblem::Square);
        let serial = run_sweep(sys.as_ref(), problem, Precision::F32, &cfg);
        let pool = ThreadPool::new(3);
        let pooled = run_sweep_pooled(Arc::clone(&sys), problem, Precision::F32, &cfg, &pool);
        assert_eq!(serial, pooled);
        // more chunks than workers is fine too (uneven tail chunk)
        let tiny = SweepConfig::new(1, 5, 1);
        let serial = run_sweep(sys.as_ref(), problem, Precision::F64, &tiny);
        let pooled = run_sweep_pooled(Arc::clone(&sys), problem, Precision::F64, &tiny, &pool);
        assert_eq!(serial, pooled);
        // single-size sweep falls back to the serial path
        let one = SweepConfig::new(64, 64, 1);
        let serial = run_sweep(sys.as_ref(), problem, Precision::F32, &one);
        let pooled = run_sweep_pooled(sys, problem, Precision::F32, &one, &pool);
        assert_eq!(serial, pooled);
    }

    #[test]
    fn step_reduces_sample_count_but_keeps_endpoint() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 100, 1).with_step(9);
        let sweep = run_sweep(
            &sys,
            Problem::Gemv(GemvProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert!(sweep.records.len() < 100);
        assert_eq!(sweep.records.last().unwrap().param, 100);
    }
}
