//! The benchmark runner: sweeps every problem size of a problem type on a
//! backend and records CPU and GPU performance, exactly the measurement
//! loop the paper's artifact performs (CPU then GPU per size, interleaved,
//! §III).

use crate::backend::Backend;
use crate::checkpoint::{Checkpoint, CheckpointError};
use crate::fault;
use crate::problem::Problem;
use crate::threshold::{offload_threshold_index, ThresholdPoint};
use crate::trace;
use blob_sim::{BlasCall, Kernel, Offload, Precision};

pub use blob_blas::ThreadPool;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Sweep configuration: the artifact's `-s`, `-d`, `-i` arguments plus a
/// stride for coarse sweeps.
///
/// Fields are private — a value of this type always satisfies its
/// invariants (`min_dim >= 1`, `max_dim >= min_dim`, `step >= 1`, finite
/// scalars). Construct one with [`SweepConfig::paper`],
/// [`SweepConfig::new`] (trusted inputs, clamps), or
/// [`SweepConfig::builder`] (untrusted inputs, validates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    min_dim: usize,
    max_dim: usize,
    iterations: u32,
    step: usize,
    alpha: f64,
    beta: f64,
}

impl SweepConfig {
    /// The paper's configuration: `-s 1 -d 4096`, α=1, β=0.
    pub fn paper(iterations: u32) -> Self {
        Self::new(1, 4096, iterations)
    }

    /// A configuration with a custom dimension range. For trusted
    /// (programmatic) inputs: out-of-range values are clamped into the
    /// invariants rather than rejected — `min_dim` up to 1, `max_dim` up
    /// to `min_dim`. Wire- or CLI-facing code should use
    /// [`SweepConfig::builder`], which rejects instead.
    pub fn new(min_dim: usize, max_dim: usize, iterations: u32) -> Self {
        let min_dim = min_dim.max(1);
        Self {
            min_dim,
            max_dim: max_dim.max(min_dim),
            iterations,
            step: 1,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// A validating builder for untrusted inputs (see
    /// [`SweepConfigBuilder`]).
    pub fn builder() -> SweepConfigBuilder {
        SweepConfigBuilder {
            min_dim: 1,
            max_dim: 4096,
            iterations: 1,
            step: 1,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Sets the sweep stride (coarser = faster).
    pub fn with_step(mut self, step: usize) -> Self {
        self.step = step.max(1);
        self
    }

    /// Minimum dimension (`-s`).
    pub fn min_dim(&self) -> usize {
        self.min_dim
    }

    /// Maximum dimension (`-d`).
    pub fn max_dim(&self) -> usize {
        self.max_dim
    }

    /// Iteration count of each timed loop (`-i`).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Stride over the size parameter; 1 sweeps every size like the paper.
    pub fn step(&self) -> usize {
        self.step
    }

    /// α for every call (default 1).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// β for every call (default 0, the artifact's configuration).
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The iteration counts the paper evaluates.
    pub const PAPER_ITERATIONS: [u32; 5] = [1, 8, 32, 64, 128];
}

/// Why a [`SweepConfigBuilder`] rejected its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `min_dim` was zero.
    ZeroMinDim,
    /// `max_dim` was below `min_dim`.
    EmptyRange {
        /// The requested minimum dimension.
        min_dim: usize,
        /// The requested maximum dimension.
        max_dim: usize,
    },
    /// The iteration count was zero.
    ZeroIterations,
    /// The sweep stride was zero.
    ZeroStep,
    /// The named scalar (`"alpha"` or `"beta"`) was NaN or infinite.
    NonFiniteScalar(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroMinDim => write!(f, "sweep config: min_dim must be >= 1"),
            ConfigError::EmptyRange { min_dim, max_dim } => write!(
                f,
                "sweep config: max_dim ({max_dim}) must be >= min_dim ({min_dim})"
            ),
            ConfigError::ZeroIterations => write!(f, "sweep config: iterations must be >= 1"),
            ConfigError::ZeroStep => write!(f, "sweep config: step must be >= 1"),
            ConfigError::NonFiniteScalar(s) => write!(f, "sweep config: `{s}` must be finite"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`SweepConfig`]: the choke point where
/// untrusted sweep shapes (wire requests, CLI flags) become a config.
/// Unlike [`SweepConfig::new`], nothing is clamped — an invalid shape
/// is a typed [`ConfigError`].
#[derive(Debug, Clone, Copy)]
pub struct SweepConfigBuilder {
    min_dim: usize,
    max_dim: usize,
    iterations: u32,
    step: usize,
    alpha: f64,
    beta: f64,
}

impl SweepConfigBuilder {
    /// Sets the dimension range (defaults: 1..=4096, the paper's).
    pub fn dims(mut self, min_dim: usize, max_dim: usize) -> Self {
        self.min_dim = min_dim;
        self.max_dim = max_dim;
        self
    }

    /// Sets the iteration count (default 1).
    pub fn iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the sweep stride (default 1).
    pub fn step(mut self, step: usize) -> Self {
        self.step = step;
        self
    }

    /// Sets α and β for every call (defaults 1 and 0).
    pub fn scalars(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<SweepConfig, ConfigError> {
        if self.min_dim == 0 {
            return Err(ConfigError::ZeroMinDim);
        }
        if self.max_dim < self.min_dim {
            return Err(ConfigError::EmptyRange {
                min_dim: self.min_dim,
                max_dim: self.max_dim,
            });
        }
        if self.iterations == 0 {
            return Err(ConfigError::ZeroIterations);
        }
        if self.step == 0 {
            return Err(ConfigError::ZeroStep);
        }
        if !self.alpha.is_finite() {
            return Err(ConfigError::NonFiniteScalar("alpha"));
        }
        if !self.beta.is_finite() {
            return Err(ConfigError::NonFiniteScalar("beta"));
        }
        Ok(SweepConfig {
            min_dim: self.min_dim,
            max_dim: self.max_dim,
            iterations: self.iterations,
            step: self.step,
            alpha: self.alpha,
            beta: self.beta,
        })
    }
}

/// One GPU timing at one problem size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSample {
    /// Offload strategy this sample used.
    pub offload: Offload,
    /// Total measured seconds for the configured iterations.
    pub seconds: f64,
    /// Achieved GFLOP/s (paper FLOPs formula).
    pub gflops: f64,
}

/// Everything measured at one problem size.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRecord {
    /// The size parameter `p` that generated these dimensions.
    pub param: usize,
    /// Concrete kernel dimensions.
    pub kernel: Kernel,
    /// Total CPU seconds for the configured iterations.
    pub cpu_seconds: f64,
    /// Achieved CPU GFLOP/s (paper FLOPs formula).
    pub cpu_gflops: f64,
    /// GPU samples, one per offload strategy (empty on CPU-only backends).
    pub gpu: Vec<GpuSample>,
}

impl SizeRecord {
    /// The GPU sample for a given offload strategy, if measured.
    pub fn gpu_sample(&self, offload: Offload) -> Option<&GpuSample> {
        self.gpu.iter().find(|g| g.offload == offload)
    }
}

/// A completed sweep of one (problem type, precision, iteration count).
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Backend name (system).
    pub system: String,
    /// Problem type swept.
    pub problem: Problem,
    /// Element precision of every measurement.
    pub precision: Precision,
    /// Iteration count of each timed loop.
    pub iterations: u32,
    /// One record per size parameter, in sweep order.
    pub records: Vec<SizeRecord>,
}

impl Sweep {
    /// The offload threshold for `offload`: concrete dimensions of the
    /// first size from which the GPU durably wins, or `None` (the paper's
    /// `—`). Also `None` when the backend measured no GPU.
    pub fn threshold(&self, offload: Offload) -> Option<Kernel> {
        let points: Option<Vec<ThresholdPoint>> = self
            .records
            .iter()
            .map(|r| {
                r.gpu_sample(offload).map(|g| ThresholdPoint {
                    cpu_seconds: r.cpu_seconds,
                    gpu_seconds: g.seconds,
                })
            })
            .collect();
        let points = points?;
        offload_threshold_index(&points).map(|i| self.records[i].kernel)
    }

    /// CPU GFLOP/s series (for plotting).
    pub fn cpu_series(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .map(|r| (r.param, r.cpu_gflops))
            .collect()
    }

    /// GPU GFLOP/s series for one offload strategy.
    pub fn gpu_series(&self, offload: Offload) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.gpu_sample(offload).map(|g| (r.param, g.gflops)))
            .collect()
    }
}

/// Builds the call for one problem size under a sweep configuration.
pub fn call_for(problem: Problem, precision: Precision, p: usize, cfg: &SweepConfig) -> BlasCall {
    let kernel = problem.dims(p);
    BlasCall {
        kernel,
        precision,
        alpha: cfg.alpha,
        beta: cfg.beta,
    }
}

/// Runs a full sweep of `problem` at `precision` on `backend`.
///
/// For every size parameter in range, the CPU is timed and then each
/// available offload strategy is timed on the GPU — the artifact's
/// interleaved collection order.
pub fn run_sweep(
    backend: &dyn Backend,
    problem: Problem,
    precision: Precision,
    cfg: &SweepConfig,
) -> Sweep {
    let offloads = backend.offloads();
    let iters = cfg.iterations.max(1);
    let records = problem
        .params(cfg.min_dim, cfg.max_dim, cfg.step)
        .into_iter()
        .map(|p| measure_size(backend, problem, precision, p, cfg, iters, &offloads))
        .collect();
    Sweep {
        system: backend.name(),
        problem,
        precision,
        iterations: iters,
        records,
    }
}

/// Measures one problem size: CPU, then each offload strategy — the
/// artifact's interleaved collection order.
fn measure_size(
    backend: &dyn Backend,
    problem: Problem,
    precision: Precision,
    p: usize,
    cfg: &SweepConfig,
    iters: u32,
    offloads: &[Offload],
) -> SizeRecord {
    let size_span = trace::span(trace::names::SWEEP_SIZE, trace::cats::RUNNER);
    size_span.annotate("param", p as u64);
    size_span.annotate("iterations", u64::from(iters));
    // The `runner.size` fault point models a transient backend hiccup at
    // this size: an injected error is simply retried (the measurement has
    // not started yet), an injected delay models a slow kernel for the
    // watchdog to notice, and retry exhaustion proceeds to measure — a
    // benchmark harness degrades to *slow*, never to *absent* numbers.
    for _attempt in 0..3 {
        if fault::point(fault::sites::RUNNER_SIZE).is_ok() {
            break;
        }
    }
    let call = call_for(problem, precision, p, cfg);
    let cpu_seconds = backend.cpu_seconds(&call, iters);
    let total_flops = iters as f64 * call.paper_flops();
    let cpu_gflops = total_flops / cpu_seconds / 1e9;
    let gpu = offloads
        .iter()
        .filter_map(|&o| {
            backend.gpu_seconds(&call, iters, o).map(|s| GpuSample {
                offload: o,
                seconds: s,
                gflops: total_flops / s / 1e9,
            })
        })
        .collect();
    SizeRecord {
        param: p,
        kernel: call.kernel,
        cpu_seconds,
        cpu_gflops,
        gpu,
    }
}

/// [`run_sweep`], with the per-size measurement loop fanned out over a
/// persistent [`ThreadPool`] in contiguous chunks. The returned [`Sweep`]
/// is **identical** to the serial one — records stay in sweep order and
/// each size is measured exactly once.
///
/// Only meaningful for *model-evaluating* backends ([`blob_sim`]'s
/// analytic `SystemModel`s), whose "timings" are pure functions of the
/// call. A wall-clock backend (e.g. `HostCpu`) must keep using
/// [`run_sweep`]: concurrent timed measurements contend for the cores
/// being measured and corrupt each other's numbers.
pub fn run_sweep_pooled<B>(
    backend: Arc<B>,
    problem: Problem,
    precision: Precision,
    cfg: &SweepConfig,
    pool: &ThreadPool,
) -> Sweep
where
    B: Backend + Send + Sync + 'static,
{
    let params = problem.params(cfg.min_dim, cfg.max_dim, cfg.step);
    let workers = pool.threads().min(params.len());
    if workers <= 1 {
        return run_sweep(backend.as_ref(), problem, precision, cfg);
    }
    let offloads = backend.offloads();
    let iters = cfg.iterations.max(1);
    let cfg = *cfg;
    let slots: Arc<Mutex<Vec<Option<SizeRecord>>>> = Arc::new(Mutex::new(vec![None; params.len()]));
    let per = params.len().div_ceil(workers);
    let mut batch = pool.batch();
    for (chunk_idx, chunk) in params.chunks(per).enumerate() {
        let chunk = chunk.to_vec();
        let backend = Arc::clone(&backend);
        let slots = Arc::clone(&slots);
        let offloads = offloads.clone();
        let base = chunk_idx * per;
        batch.submit(move || {
            for (j, p) in chunk.into_iter().enumerate() {
                let rec = measure_size(
                    backend.as_ref(),
                    problem,
                    precision,
                    p,
                    &cfg,
                    iters,
                    &offloads,
                );
                let mut s = slots
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                s[base + j] = Some(rec);
            }
        });
    }
    batch.wait();
    // The batch barrier guarantees every slot was filled; `flatten` is the
    // panic-free way to say so.
    let mut s = slots
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let records = std::mem::take(&mut *s).into_iter().flatten().collect();
    Sweep {
        system: backend.name(),
        problem,
        precision,
        iterations: iters,
        records,
    }
}

/// Result of [`run_sweep_checkpointed`]: the sweep plus resume/watchdog
/// diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointedRun {
    /// The completed sweep, identical to what [`run_sweep`] returns.
    pub sweep: Sweep,
    /// Records loaded from the checkpoint instead of re-measured.
    pub resumed: usize,
    /// Sizes the watchdog flagged as exceeding their time budget.
    pub watchdog_stalls: u64,
}

/// Watchdog over the per-size measurement loop: a plain monitor thread
/// that flags (to stderr, and in [`CheckpointedRun::watchdog_stalls`])
/// any size whose measurement exceeds its budget. It never kills the
/// measurement — a benchmark harness must keep producing numbers — but
/// it turns a silent hang into a diagnosable, counted event.
struct Watchdog {
    epoch: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    stalls: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn start(budget: Duration) -> Self {
        let epoch = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let stalls = Arc::new(AtomicU64::new(0));
        let (e, s, st) = (Arc::clone(&epoch), Arc::clone(&stop), Arc::clone(&stalls));
        let tick = (budget / 4).max(Duration::from_millis(5));
        let thread = std::thread::Builder::new()
            .name("blob-watchdog".to_string())
            .spawn(move || {
                let mut last_epoch = e.load(Ordering::Relaxed);
                let mut since = Instant::now();
                let mut flagged = false;
                while !s.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    let now_epoch = e.load(Ordering::Relaxed);
                    if now_epoch != last_epoch {
                        last_epoch = now_epoch;
                        since = Instant::now();
                        flagged = false;
                    } else if !flagged && since.elapsed() > budget {
                        st.fetch_add(1, Ordering::Relaxed);
                        flagged = true;
                        eprintln!(
                            "gpu-blob: watchdog: size #{now_epoch} exceeded its {:?} budget",
                            budget
                        );
                    }
                }
            })
            .ok();
        Self {
            epoch,
            stop,
            stalls,
            thread,
        }
    }

    fn advance(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    fn finish(mut self) -> u64 {
        // relaxed: the join() below is the synchronisation point; the
        // watcher polls `stop` with SeqCst and only needs eventual visibility
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.stalls.load(Ordering::Relaxed)
    }
}

/// [`run_sweep`] with crash-safe checkpointing and an optional per-size
/// watchdog.
///
/// After every measured size the partial sweep is persisted atomically
/// to `ckpt_path` (bit-exact floats — see [`crate::checkpoint`]). With
/// `resume`, a matching checkpoint's records are loaded and measurement
/// continues from the first missing size, so a killed sweep finishes
/// with **byte-identical** results to an uninterrupted one. A checkpoint
/// keyed to a *different* sweep is an error with `resume` and is simply
/// overwritten without it.
///
/// A checkpoint-save failure (disk full, injected `checkpoint.write`
/// fault) degrades the run to unresumable but does not stop it: the
/// error is reported on stderr once and measurement continues.
pub fn run_sweep_checkpointed(
    backend: &dyn Backend,
    problem: Problem,
    precision: Precision,
    cfg: &SweepConfig,
    ckpt_path: &Path,
    resume: bool,
    size_budget: Option<Duration>,
) -> Result<CheckpointedRun, CheckpointError> {
    let params = problem.params(cfg.min_dim, cfg.max_dim, cfg.step);
    let offloads = backend.offloads();
    let iters = cfg.iterations.max(1);
    let system = backend.name();

    let mut ck = Checkpoint::new(&system, problem, precision, cfg);
    if resume && ckpt_path.exists() {
        let loaded = Checkpoint::load(ckpt_path)?;
        if !loaded.matches(&system, problem, precision, cfg) {
            return Err(CheckpointError::Mismatch(format!(
                "{} holds a different sweep (system {}, problem {}); refusing to resume",
                ckpt_path.display(),
                loaded.system,
                loaded.problem.id()
            )));
        }
        // The records must be a prefix of this sweep's size list — a
        // truncated or reordered file means the checkpoint is not ours.
        for (i, r) in loaded.records.iter().enumerate() {
            if params.get(i) != Some(&r.param) {
                return Err(CheckpointError::Mismatch(format!(
                    "{}: record {i} is for size {} where the sweep expects {:?}",
                    ckpt_path.display(),
                    r.param,
                    params.get(i)
                )));
            }
        }
        ck = loaded;
    }
    let resumed = ck.records.len();

    let watchdog = size_budget.map(Watchdog::start);
    let mut save_failed = false;
    for &p in params.iter().skip(resumed) {
        let rec = measure_size(backend, problem, precision, p, cfg, iters, &offloads);
        ck.records.push(rec);
        if let Some(w) = &watchdog {
            w.advance();
        }
        if !save_failed {
            let save_span = trace::span(trace::names::CHECKPOINT_SAVE, trace::cats::CHECKPOINT);
            save_span.annotate("records", ck.records.len() as u64);
            if let Err(e) = ck.save(ckpt_path) {
                eprintln!("gpu-blob: checkpointing disabled for this run: {e}");
                save_failed = true;
            }
        }
    }
    ck.complete = true;
    if !save_failed {
        let save_span = trace::span(trace::names::CHECKPOINT_SAVE, trace::cats::CHECKPOINT);
        save_span.annotate("records", ck.records.len() as u64);
        if let Err(e) = ck.save(ckpt_path) {
            eprintln!("gpu-blob: final checkpoint write failed: {e}");
        }
    }
    let watchdog_stalls = watchdog.map_or(0, Watchdog::finish);

    Ok(CheckpointedRun {
        sweep: Sweep {
            system,
            problem,
            precision,
            iterations: iters,
            records: ck.records,
        },
        resumed,
        watchdog_stalls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GemmProblem, GemvProblem};
    use blob_sim::presets;

    #[test]
    fn sweep_covers_requested_sizes() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 64, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert_eq!(sweep.records.len(), 64);
        assert_eq!(sweep.records[0].param, 1);
        assert_eq!(sweep.records.last().unwrap().param, 64);
        for r in &sweep.records {
            assert!(r.cpu_seconds > 0.0);
            assert_eq!(r.gpu.len(), 3, "three offload strategies per size");
            assert!(r.cpu_gflops > 0.0);
        }
    }

    #[test]
    fn cpu_only_backend_yields_no_gpu_samples_or_thresholds() {
        let sys = presets::isambard_ai_armpl();
        let cfg = SweepConfig::new(1, 32, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemv(GemvProblem::Square),
            Precision::F64,
            &cfg,
        );
        assert!(sweep.records.iter().all(|r| r.gpu.is_empty()));
        assert_eq!(sweep.threshold(Offload::TransferOnce), None);
    }

    #[test]
    fn gflops_respects_paper_formula() {
        let sys = presets::lumi();
        let cfg = SweepConfig::new(10, 10, 4);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F64,
            &cfg,
        );
        let r = &sweep.records[0];
        let call = BlasCall::gemm(Precision::F64, 10, 10, 10);
        let expect = 4.0 * call.paper_flops() / r.cpu_seconds / 1e9;
        assert!((r.cpu_gflops - expect).abs() < 1e-9);
    }

    #[test]
    fn thresholds_map_to_kernel_dims() {
        // Isambard square GEMM has a small stable threshold; whatever the
        // exact value, the returned dims must be square and in range.
        let sys = presets::isambard_ai();
        let cfg = SweepConfig::new(1, 256, 8);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        if let Some(Kernel::Gemm { m, n, k }) = sweep.threshold(Offload::TransferOnce) {
            assert_eq!(m, n);
            assert_eq!(n, k);
            assert!((1..=256).contains(&m));
        } else {
            panic!("expected a square-GEMM threshold on Isambard-AI");
        }
    }

    #[test]
    fn series_extraction() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 16, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert_eq!(sweep.cpu_series().len(), 16);
        assert_eq!(sweep.gpu_series(Offload::Unified).len(), 16);
        assert!(sweep
            .gpu_series(Offload::TransferOnce)
            .iter()
            .all(|&(_, g)| g > 0.0));
    }

    #[test]
    fn pooled_sweep_is_identical_to_serial() {
        let sys = Arc::new(presets::dawn());
        let cfg = SweepConfig::new(1, 97, 2).with_step(3);
        let problem = Problem::Gemm(GemmProblem::Square);
        let serial = run_sweep(sys.as_ref(), problem, Precision::F32, &cfg);
        let pool = ThreadPool::new(3);
        let pooled = run_sweep_pooled(Arc::clone(&sys), problem, Precision::F32, &cfg, &pool);
        assert_eq!(serial, pooled);
        // more chunks than workers is fine too (uneven tail chunk)
        let tiny = SweepConfig::new(1, 5, 1);
        let serial = run_sweep(sys.as_ref(), problem, Precision::F64, &tiny);
        let pooled = run_sweep_pooled(Arc::clone(&sys), problem, Precision::F64, &tiny, &pool);
        assert_eq!(serial, pooled);
        // single-size sweep falls back to the serial path
        let one = SweepConfig::new(64, 64, 1);
        let serial = run_sweep(sys.as_ref(), problem, Precision::F32, &one);
        let pooled = run_sweep_pooled(sys, problem, Precision::F32, &one, &pool);
        assert_eq!(serial, pooled);
    }

    fn tdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("blob_runner_{name}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn checkpointed_sweep_equals_plain_sweep() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 40, 2).with_step(3);
        let problem = Problem::Gemm(GemmProblem::Square);
        let plain = run_sweep(&sys, problem, Precision::F32, &cfg);
        let d = tdir("equals");
        let path = d.join("ck.json");
        let run = run_sweep_checkpointed(&sys, problem, Precision::F32, &cfg, &path, false, None)
            .unwrap();
        assert_eq!(run.sweep, plain);
        assert_eq!(run.resumed, 0);
        // the final checkpoint is complete and holds every record
        let ck = Checkpoint::load(&path).unwrap();
        assert!(ck.complete);
        assert_eq!(ck.records, plain.records);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn resume_from_partial_checkpoint_is_bit_identical() {
        let sys = presets::lumi();
        let cfg = SweepConfig::new(1, 30, 1).with_step(2);
        let problem = Problem::Gemv(GemvProblem::Square);
        let plain = run_sweep(&sys, problem, Precision::F64, &cfg);
        // Fabricate a mid-sweep kill: checkpoint holding the first 5 records.
        let d = tdir("resume");
        let path = d.join("ck.json");
        let mut partial = Checkpoint::new(&sys.name(), problem, Precision::F64, &cfg);
        partial.records = plain.records[..5].to_vec();
        partial.save(&path).unwrap();
        let run =
            run_sweep_checkpointed(&sys, problem, Precision::F64, &cfg, &path, true, None).unwrap();
        assert_eq!(run.resumed, 5);
        assert_eq!(run.sweep, plain);
        // bit-identical CSV output, the chaos suite's core claim
        assert_eq!(
            crate::csv::to_csv_string(&run.sweep),
            crate::csv::to_csv_string(&plain)
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn resume_refuses_a_foreign_checkpoint() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 10, 1);
        let problem = Problem::Gemm(GemmProblem::Square);
        let d = tdir("foreign");
        let path = d.join("ck.json");
        let other = Checkpoint::new("LUMI", problem, Precision::F32, &cfg);
        other.save(&path).unwrap();
        let err = run_sweep_checkpointed(&sys, problem, Precision::F32, &cfg, &path, true, None)
            .unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
        // without --resume the foreign checkpoint is overwritten
        let run = run_sweep_checkpointed(&sys, problem, Precision::F32, &cfg, &path, false, None)
            .unwrap();
        assert_eq!(run.sweep.records.len(), 10);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn watchdog_flags_a_slow_size() {
        let _guard = crate::fault::CHAOS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let plan = crate::fault::Plan::parse("seed=5;runner.size:delay(40ms)@1x1").unwrap();
        crate::fault::install(&plan);
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 3, 1);
        let d = tdir("watchdog");
        let path = d.join("ck.json");
        let run = run_sweep_checkpointed(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
            &path,
            false,
            Some(Duration::from_millis(10)),
        )
        .unwrap();
        crate::fault::clear();
        assert!(
            run.watchdog_stalls >= 1,
            "40ms injected delay must trip a 10ms budget"
        );
        assert_eq!(run.sweep.records.len(), 3, "watchdog never kills the sweep");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn builder_validates_and_matches_new() {
        let built = SweepConfig::builder()
            .dims(2, 64)
            .iterations(8)
            .step(3)
            .build()
            .unwrap();
        assert_eq!(built, SweepConfig::new(2, 64, 8).with_step(3));
        let scaled = SweepConfig::builder()
            .dims(1, 4)
            .iterations(1)
            .scalars(2.0, 1.0)
            .build()
            .unwrap();
        assert_eq!(scaled.alpha().to_bits(), 2.0f64.to_bits());
        assert_eq!(scaled.beta().to_bits(), 1.0f64.to_bits());
        assert_eq!(
            SweepConfig::builder().dims(0, 4).build(),
            Err(ConfigError::ZeroMinDim)
        );
        assert_eq!(
            SweepConfig::builder().dims(8, 4).build(),
            Err(ConfigError::EmptyRange {
                min_dim: 8,
                max_dim: 4
            })
        );
        assert_eq!(
            SweepConfig::builder().iterations(0).build(),
            Err(ConfigError::ZeroIterations)
        );
        assert_eq!(
            SweepConfig::builder().step(0).build(),
            Err(ConfigError::ZeroStep)
        );
        assert_eq!(
            SweepConfig::builder().scalars(f64::NAN, 0.0).build(),
            Err(ConfigError::NonFiniteScalar("alpha"))
        );
        // `new` clamps trusted inputs into the invariants instead
        assert_eq!(SweepConfig::new(0, 0, 1).min_dim(), 1);
        assert_eq!(SweepConfig::new(0, 0, 1).max_dim(), 1);
    }

    #[test]
    fn step_reduces_sample_count_but_keeps_endpoint() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 100, 1).with_step(9);
        let sweep = run_sweep(
            &sys,
            Problem::Gemv(GemvProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert!(sweep.records.len() < 100);
        assert_eq!(sweep.records.last().unwrap().param, 100);
    }
}
