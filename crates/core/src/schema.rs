//! The versioned (v1) request/response schema, defined exactly once.
//!
//! Every shape that crosses the wire has two halves: a `parse_*`
//! validator (request side) and a `*_json` encoder (response side).
//! The encoders have always lived in [`crate::wire`]; the validators
//! used to be private helpers inside `blob-serve`'s `api.rs`, which
//! meant the v1 request shapes were defined twice — once as parsing
//! code, once as encoding code, with nothing keeping them aligned.
//! This module is the single home for both: the validators live here
//! and the encoders are re-exported, so `blob-serve` (and any future
//! client) imports one module for the whole schema.
//!
//! Validation failures carry a stable machine-readable `code` (the
//! README documents the vocabulary) plus a human-readable message;
//! `blob-serve` maps them onto its uniform error envelope
//! `{"error":{"code","message","trace_id"}}`.

use crate::wire::Json;
use blob_sim::BlasCall;

// The response-side encoders (and the scalar enum parsers), re-exported
// so request and response shapes are imported from the same module.
pub use crate::wire::{
    advice_json, call_json, custom_sweep_json, kernel_json, offload_key, parse_precision,
    parse_problem_id, precision_key, sweep_json,
};

/// A request-validation failure: a stable machine-readable code plus a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Stable error code (`invalid_json`, `missing_field`, …); part of
    /// the v1 wire contract, documented in the README.
    pub code: &'static str,
    /// Human-readable detail for this particular failure.
    pub message: String,
}

impl SchemaError {
    fn new(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// The stable error-code vocabulary of the v1 wire surface.
pub mod codes {
    /// The request body was not syntactically valid JSON, or not an object.
    pub const INVALID_JSON: &str = "invalid_json";
    /// A required field was absent (or had the wrong type).
    pub const MISSING_FIELD: &str = "missing_field";
    /// A present field failed validation (range, type, enum membership).
    pub const INVALID_FIELD: &str = "invalid_field";
}

/// Parses a request body into a JSON object document.
pub fn parse_body(body: &[u8]) -> Result<Json, SchemaError> {
    if body.is_empty() {
        return Err(SchemaError::new(
            codes::INVALID_JSON,
            "request body must be a JSON object",
        ));
    }
    let doc = Json::parse_bytes(body)
        .map_err(|e| SchemaError::new(codes::INVALID_JSON, format!("invalid JSON: {e}")))?;
    match doc {
        Json::Obj(_) => Ok(doc),
        _ => Err(SchemaError::new(
            codes::INVALID_JSON,
            "request body must be a JSON object",
        )),
    }
}

/// Requires a string field.
pub fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, SchemaError> {
    doc.get(key).and_then(Json::as_str).ok_or_else(|| {
        SchemaError::new(
            codes::MISSING_FIELD,
            format!("missing string field `{key}`"),
        )
    })
}

/// Reads an optional `u32` field, defaulting when absent.
pub fn optional_u32(doc: &Json, key: &str, default: u32) -> Result<u32, SchemaError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| {
                SchemaError::new(
                    codes::INVALID_FIELD,
                    format!("`{key}` must be a non-negative integer"),
                )
            }),
    }
}

/// Reads an optional `usize` field, defaulting when absent.
pub fn optional_usize(doc: &Json, key: &str, default: usize) -> Result<usize, SchemaError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .and_then(|n| usize::try_from(n).ok())
            .ok_or_else(|| {
                SchemaError::new(
                    codes::INVALID_FIELD,
                    format!("`{key}` must be a non-negative integer"),
                )
            }),
    }
}

/// Decodes a BLAS call from a request document: `op` (`gemm`/`gemv`),
/// dimensions, `precision`, and optional `alpha`/`beta`. Dimensions are
/// bounded by `max_dim`; the final shape is validated by
/// [`BlasCall::builder`], so an invalid call is unrepresentable here.
pub fn parse_call(doc: &Json, max_dim: usize) -> Result<BlasCall, SchemaError> {
    let op = require_str(doc, "op")?;
    let precision = doc
        .get("precision")
        .and_then(Json::as_str)
        .and_then(parse_precision)
        .ok_or_else(|| SchemaError::new(codes::INVALID_FIELD, "precision must be f32 or f64"))?;
    let dim = |key: &'static str| -> Result<usize, SchemaError> {
        let n = doc.get(key).and_then(Json::as_u64).ok_or_else(|| {
            SchemaError::new(codes::MISSING_FIELD, format!("missing dimension `{key}`"))
        })?;
        let n = usize::try_from(n).map_err(|_| {
            SchemaError::new(
                codes::INVALID_FIELD,
                format!("dimension `{key}` is too large"),
            )
        })?;
        if n == 0 || n > max_dim {
            return Err(SchemaError::new(
                codes::INVALID_FIELD,
                format!("dimension `{key}` must be in 1..={max_dim}"),
            ));
        }
        Ok(n)
    };
    let mut builder = BlasCall::builder().precision(precision);
    builder = match op {
        "gemm" => builder.gemm(dim("m")?, dim("n")?, dim("k")?),
        "gemv" => builder.gemv(dim("m")?, dim("n")?),
        other => {
            return Err(SchemaError::new(
                codes::INVALID_FIELD,
                format!("op must be gemm or gemv, got `{other}`"),
            ))
        }
    };
    if let Some(alpha) = doc.get("alpha") {
        builder = builder.alpha(
            alpha
                .as_f64()
                .ok_or_else(|| SchemaError::new(codes::INVALID_FIELD, "alpha must be a number"))?,
        );
    }
    if let Some(beta) = doc.get("beta") {
        builder = builder.beta(
            beta.as_f64()
                .ok_or_else(|| SchemaError::new(codes::INVALID_FIELD, "beta must be a number"))?,
        );
    }
    builder
        .build()
        .map_err(|e| SchemaError::new(codes::INVALID_FIELD, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_sim::{Kernel, Precision};

    #[test]
    fn parse_body_accepts_objects_only() {
        assert_eq!(parse_body(b"").unwrap_err().code, codes::INVALID_JSON);
        assert_eq!(
            parse_body(b"{not json").unwrap_err().code,
            codes::INVALID_JSON
        );
        assert_eq!(parse_body(b"[1,2]").unwrap_err().code, codes::INVALID_JSON);
        assert!(parse_body(br#"{"a":1}"#).is_ok());
    }

    #[test]
    fn field_helpers_report_stable_codes() {
        let doc = parse_body(br#"{"name":"x","n":"not a number"}"#).unwrap();
        assert_eq!(require_str(&doc, "name").unwrap(), "x");
        assert_eq!(
            require_str(&doc, "absent").unwrap_err().code,
            codes::MISSING_FIELD
        );
        assert_eq!(optional_u32(&doc, "absent", 7).unwrap(), 7);
        assert_eq!(
            optional_u32(&doc, "n", 7).unwrap_err().code,
            codes::INVALID_FIELD
        );
        assert_eq!(
            optional_usize(&doc, "n", 7).unwrap_err().code,
            codes::INVALID_FIELD
        );
    }

    #[test]
    fn parse_call_round_trips_through_the_builder() {
        let doc = parse_body(
            br#"{"op":"gemm","m":8,"n":16,"k":32,"precision":"f32","alpha":2.0,"beta":1.0}"#,
        )
        .unwrap();
        let call = parse_call(&doc, 4096).unwrap();
        assert_eq!(call.kernel, Kernel::Gemm { m: 8, n: 16, k: 32 });
        assert_eq!(call.precision, Precision::F32);
        assert_eq!(call.alpha.to_bits(), 2.0f64.to_bits());
        assert_eq!(call.beta.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn parse_call_rejections_carry_codes() {
        let cases: [(&[u8], &str); 5] = [
            (br#"{"m":1,"n":1,"precision":"f32"}"#, codes::MISSING_FIELD),
            (
                br#"{"op":"axpy","m":1,"n":1,"precision":"f32"}"#,
                codes::INVALID_FIELD,
            ),
            (
                br#"{"op":"gemm","m":1,"n":1,"k":1,"precision":"f16"}"#,
                codes::INVALID_FIELD,
            ),
            (
                br#"{"op":"gemm","m":0,"n":1,"k":1,"precision":"f32"}"#,
                codes::INVALID_FIELD,
            ),
            (
                br#"{"op":"gemv","m":1,"n":1,"precision":"f64","alpha":"x"}"#,
                codes::INVALID_FIELD,
            ),
        ];
        for (body, want) in cases {
            let doc = parse_body(body).unwrap();
            assert_eq!(parse_call(&doc, 64).unwrap_err().code, want, "{body:?}");
        }
        // over the caller's dimension ceiling
        let doc = parse_body(br#"{"op":"gemv","m":65,"n":1,"precision":"f64"}"#).unwrap();
        assert_eq!(parse_call(&doc, 64).unwrap_err().code, codes::INVALID_FIELD);
    }
}
