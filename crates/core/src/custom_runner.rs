//! Sweeping user-defined problem families ([`CustomProblem`]) through the
//! same measurement loop and threshold detection as the built-ins.

use crate::backend::Backend;
use crate::custom::CustomProblem;
use crate::runner::{GpuSample, SizeRecord, SweepConfig};
use crate::threshold::{offload_threshold_index, ThresholdPoint};
use blob_sim::{BlasCall, Kernel, Offload, Precision};

/// A completed sweep of a custom problem family.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomSweep {
    /// Backend name (system).
    pub system: String,
    /// The user-defined problem family swept.
    pub problem: CustomProblem,
    /// Element precision of every measurement.
    pub precision: Precision,
    /// Iteration count of each timed loop.
    pub iterations: u32,
    /// One record per size parameter, in sweep order.
    pub records: Vec<SizeRecord>,
}

impl CustomSweep {
    /// The offload threshold for `offload` (same §III-D semantics as the
    /// built-in problems).
    pub fn threshold(&self, offload: Offload) -> Option<Kernel> {
        let points: Option<Vec<ThresholdPoint>> = self
            .records
            .iter()
            .map(|r| {
                r.gpu_sample(offload).map(|g| ThresholdPoint {
                    cpu_seconds: r.cpu_seconds,
                    gpu_seconds: g.seconds,
                })
            })
            .collect();
        offload_threshold_index(&points?).map(|i| self.records[i].kernel)
    }
}

/// Runs a sweep of a [`CustomProblem`] on a backend.
pub fn run_custom_sweep(
    backend: &dyn Backend,
    problem: &CustomProblem,
    precision: Precision,
    cfg: &SweepConfig,
) -> CustomSweep {
    let offloads = backend.offloads();
    let iters = cfg.iterations().max(1);
    let records = problem
        .params(cfg.min_dim(), cfg.max_dim(), cfg.step())
        .into_iter()
        .map(|p| {
            let call = BlasCall {
                kernel: problem.dims(p),
                precision,
                alpha: cfg.alpha(),
                beta: cfg.beta(),
            };
            let cpu_seconds = backend.cpu_seconds(&call, iters);
            let total_flops = iters as f64 * call.paper_flops();
            let gpu = offloads
                .iter()
                .filter_map(|&o| {
                    backend.gpu_seconds(&call, iters, o).map(|s| GpuSample {
                        offload: o,
                        seconds: s,
                        gflops: total_flops / s / 1e9,
                    })
                })
                .collect();
            SizeRecord {
                param: p,
                kernel: call.kernel,
                cpu_seconds,
                cpu_gflops: total_flops / cpu_seconds / 1e9,
                gpu,
            }
        })
        .collect();
    CustomSweep {
        system: backend.name(),
        problem: problem.clone(),
        precision,
        iterations: iters,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::DimRule;
    use blob_sim::presets;

    #[test]
    fn custom_square_matches_builtin_square() {
        use crate::problem::{GemmProblem, Problem};
        use crate::runner::run_sweep;
        let sys = presets::lumi();
        let cfg = SweepConfig::new(1, 128, 8);
        let custom = CustomProblem::parse("gemm:p,p,p").unwrap();
        let cs = run_custom_sweep(&sys, &custom, Precision::F32, &cfg);
        let bs = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        assert_eq!(cs.records.len(), bs.records.len());
        for (c, b) in cs.records.iter().zip(bs.records.iter()) {
            assert_eq!(c.kernel, b.kernel);
            assert_eq!(c.cpu_seconds, b.cpu_seconds);
            assert_eq!(c.gpu, b.gpu);
        }
        assert_eq!(
            cs.threshold(Offload::TransferOnce),
            bs.threshold(Offload::TransferOnce)
        );
    }

    #[test]
    fn transformer_family_thresholds() {
        // M = 4N, K = N: the FFN projection family from the module docs
        let sys = presets::isambard_ai();
        let p = CustomProblem::gemm(
            "ffn",
            DimRule::scaled(4),
            DimRule::scaled(1),
            DimRule::scaled(1),
        );
        let cfg = SweepConfig::new(1, 1024, 8);
        let sweep = run_custom_sweep(&sys, &p, Precision::F32, &cfg);
        // all dims within range: max param = 1024/4 = 256
        assert_eq!(sweep.records.last().unwrap().param, 256);
        assert!(sweep.threshold(Offload::TransferOnce).is_some());
    }

    #[test]
    fn custom_gemv_family() {
        let sys = presets::dawn();
        let p = CustomProblem::parse("gemv:2p,p").unwrap();
        let cfg = SweepConfig::new(1, 200, 32);
        let sweep = run_custom_sweep(&sys, &p, Precision::F64, &cfg);
        assert!(!sweep.records.is_empty());
        assert!(sweep.records.iter().all(|r| {
            let (m, n, _) = r.kernel.dims();
            m == 2 * n
        }));
    }
}
