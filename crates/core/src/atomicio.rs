//! Crash-safe file writes: `<path>.tmp` + fsync + `rename`.
//!
//! Every result, trajectory, and checkpoint file in the workspace goes
//! through [`write_atomic`], so a crash (or an injected fault — see
//! [`crate::fault`]) at any instant leaves either the old complete file
//! or the new complete file on disk, never a torn prefix.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The sibling temp path a [`write_atomic`] call stages into:
/// `results.csv` → `results.csv.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: stage into [`tmp_path`], flush
/// and fsync, then `rename` over the destination. On any error the
/// destination is untouched and the temp file is cleaned up.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    let staged = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        // fsync before the rename: otherwise a power loss can leave the
        // *rename* durable but the *contents* not, i.e. a torn file with
        // the final name — exactly what this helper exists to rule out.
        f.sync_all()
    })();
    match staged.and_then(|()| std::fs::rename(&tmp, path)) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("blob_atomicio_{name}"));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tdir("replace");
        let p = d.join("out.txt");
        write_atomic(&p, b"first").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        write_atomic(&p, b"second").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second");
        assert!(!tmp_path(&p).exists(), "temp file must not linger");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let d = tdir("fail");
        let p = d.join("out.txt");
        write_atomic(&p, b"keep me").unwrap();
        // Writing into a missing directory fails at the staging step.
        let bad = d.join("no_such_dir").join("out.txt");
        assert!(write_atomic(&bad, b"x").is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"keep me");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tmp_path_is_a_sibling() {
        let p = Path::new("/a/b/result.csv");
        assert_eq!(tmp_path(p), Path::new("/a/b/result.csv.tmp"));
    }
}
