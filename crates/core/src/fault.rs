//! Deterministic, seeded fault injection for the whole workspace.
//!
//! Real HPC nodes hang, drop connections, and kill processes mid-write;
//! the offload thresholds this harness measures are only trustworthy if
//! the harness itself survives those failure modes. This module makes
//! failure a first-class, *deterministically testable* input, the same
//! way `blob_blas::perturb` already treats scheduling noise.
//!
//! ## Fault points
//!
//! A fault *point* is a named site in the code — `fault::point("csv.write")`
//! — that a loaded fault *plan* can resolve to an injected failure. The
//! full catalogue lives in [`sites`]; unknown names are rejected at plan
//! parse time so a typo cannot silently disable a chaos test.
//!
//! When no plan is loaded, a point is one relaxed atomic load and a
//! predictable branch (the same zero-cost pattern as
//! `blob_blas::perturb::point`); `fault_gate` in `blob-bench` proves the
//! disabled cost stays irrelevant next to the gated small-GEMM latencies.
//!
//! ## Plan grammar
//!
//! ```text
//! plan   := [ "seed=" u64 ";" ] rule { ";" rule }
//! rule   := site ":" action "@" prob [ "x" count ]
//! action := "error" | "panic" | "delay(" ms "ms)"
//! ```
//!
//! Example: `seed=42;serve.sweep:error@0.5x10;runner.size:delay(3ms)@1`
//! injects an error on each `serve.sweep` hit with probability 0.5 (at
//! most 10 times total) and delays every `runner.size` hit by 3 ms.
//!
//! ## Determinism
//!
//! Each rule owns an independent [`XorShift64`] stream forked from the
//! plan seed, so the k-th *decision* a rule makes is a pure function of
//! `(seed, rule index, k)`. Single-threaded drivers therefore replay
//! bit-identically; under concurrency the per-rule decision sequence is
//! still fixed — only which caller observes which decision can vary.

use crate::rng::XorShift64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The catalogue of known fault-point names. A plan naming any other
/// site fails to parse ([`PlanError::UnknownSite`]).
pub mod sites {
    /// blob-serve acceptor, after `accept()` returns a connection.
    pub const SERVE_ACCEPT: &str = "serve.accept";
    /// blob-serve connection worker, top of its pull loop.
    pub const SERVE_WORKER: &str = "serve.worker";
    /// blob-serve request router, before dispatching a request.
    pub const SERVE_HANDLE: &str = "serve.handle";
    /// blob-serve threshold sweep computation (the retried backend call).
    pub const SERVE_SWEEP: &str = "serve.sweep";
    /// blob-serve threshold cache read (error ⇒ treated as a miss).
    pub const SERVE_CACHE: &str = "serve.cache";
    /// blob-blas thread-pool worker, between jobs (error ⇒ worker death).
    pub const POOL_WORKER: &str = blob_blas::faultpoint::sites::POOL_WORKER;
    /// Sweep runner, before measuring one problem size.
    pub const RUNNER_SIZE: &str = "runner.size";
    /// CSV result-file write.
    pub const CSV_WRITE: &str = "csv.write";
    /// Sweep checkpoint-file write.
    pub const CHECKPOINT_WRITE: &str = "checkpoint.write";
    /// Dispatch-plane routing decision (error ⇒ fall back to the static
    /// advisor prior for this call).
    pub const DISPATCH_DECIDE: &str = "dispatch.decide";

    /// Every site name, for validation and documentation.
    pub const ALL: [&str; 10] = [
        SERVE_ACCEPT,
        SERVE_WORKER,
        SERVE_HANDLE,
        SERVE_SWEEP,
        SERVE_CACHE,
        POOL_WORKER,
        RUNNER_SIZE,
        CSV_WRITE,
        CHECKPOINT_WRITE,
        DISPATCH_DECIDE,
    ];
}

/// Default plan seed when the spec omits `seed=`.
pub const DEFAULT_SEED: u64 = 0xB10B_FA17;

/// What a triggered rule does to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected [`FaultError`] from the point.
    Error,
    /// Panic at the point (payload names the site).
    Panic,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
}

/// One parsed rule of a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Which fault point this rule arms (a name from [`sites`]).
    pub site: String,
    /// What happens when the rule triggers.
    pub action: Action,
    /// Per-hit trigger probability in `[0, 1]`.
    pub prob: f64,
    /// Maximum number of triggers, or `None` for unlimited.
    pub max_triggers: Option<u64>,
}

/// A parsed, validated fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Seed for the per-rule decision streams.
    pub seed: u64,
    /// Rules in spec order; for one site, earlier rules win.
    pub rules: Vec<Rule>,
}

/// Error from [`Plan::parse`]: what was wrong with the spec text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The spec was empty or contained an empty rule.
    Empty,
    /// A rule named a site outside the [`sites`] catalogue.
    UnknownSite(String),
    /// A rule was not of the form `site:action@prob[xN]`.
    Malformed(String),
    /// The action was not `error`, `panic` or `delay(Nms)`.
    BadAction(String),
    /// The probability did not parse or was outside `[0, 1]`.
    BadProbability(String),
    /// The trigger count did not parse or was zero.
    BadCount(String),
    /// The `seed=` prefix did not parse as a u64.
    BadSeed(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Empty => write!(f, "empty fault plan"),
            PlanError::UnknownSite(s) => {
                write!(f, "unknown fault point `{s}` (see blob_core::fault::sites)")
            }
            PlanError::Malformed(s) => {
                write!(f, "malformed rule `{s}` (want site:action@prob[xN])")
            }
            PlanError::BadAction(s) => {
                write!(f, "bad action `{s}` (want error, panic or delay(Nms))")
            }
            PlanError::BadProbability(s) => {
                write!(f, "bad probability `{s}` (want a number in [0,1])")
            }
            PlanError::BadCount(s) => write!(f, "bad trigger count `{s}` (want xN with N >= 1)"),
            PlanError::BadSeed(s) => write!(f, "bad seed `{s}` (want seed=<u64>)"),
        }
    }
}

impl std::error::Error for PlanError {}

impl Plan {
    /// Parses a plan spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<Self, PlanError> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err(PlanError::Empty);
        }
        let mut seed = DEFAULT_SEED;
        let mut rules = Vec::new();
        for (i, part) in spec.split(';').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                return Err(PlanError::Empty);
            }
            if i == 0 {
                if let Some(v) = part.strip_prefix("seed=") {
                    seed = v
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| PlanError::BadSeed(part.to_string()))?;
                    continue;
                }
            }
            rules.push(parse_rule(part)?);
        }
        if rules.is_empty() {
            return Err(PlanError::Empty);
        }
        Ok(Plan { seed, rules })
    }
}

fn parse_rule(part: &str) -> Result<Rule, PlanError> {
    let malformed = || PlanError::Malformed(part.to_string());
    let (site, rest) = part.split_once(':').ok_or_else(malformed)?;
    let (action_text, prob_text) = rest.rsplit_once('@').ok_or_else(malformed)?;
    let site = site.trim();
    if !sites::ALL.contains(&site) {
        return Err(PlanError::UnknownSite(site.to_string()));
    }
    let action = parse_action(action_text.trim())?;
    let (prob_text, max_triggers) = match prob_text.split_once('x') {
        Some((p, n)) => {
            let n: u64 = n
                .trim()
                .parse()
                .map_err(|_| PlanError::BadCount(prob_text.to_string()))?;
            if n == 0 {
                return Err(PlanError::BadCount(prob_text.to_string()));
            }
            (p.trim(), Some(n))
        }
        None => (prob_text.trim(), None),
    };
    let prob: f64 = prob_text
        .parse()
        .map_err(|_| PlanError::BadProbability(prob_text.to_string()))?;
    if !(0.0..=1.0).contains(&prob) {
        return Err(PlanError::BadProbability(prob_text.to_string()));
    }
    Ok(Rule {
        site: site.to_string(),
        action,
        prob,
        max_triggers,
    })
}

fn parse_action(text: &str) -> Result<Action, PlanError> {
    match text {
        "error" => Ok(Action::Error),
        "panic" => Ok(Action::Panic),
        _ => {
            let ms = text
                .strip_prefix("delay(")
                .and_then(|t| t.strip_suffix("ms)"))
                .ok_or_else(|| PlanError::BadAction(text.to_string()))?;
            let ms: u64 = ms
                .trim()
                .parse()
                .map_err(|_| PlanError::BadAction(text.to_string()))?;
            Ok(Action::Delay(Duration::from_millis(ms)))
        }
    }
}

/// The error a fault point returns when a rule injects `error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The site that injected the error.
    pub site: String,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at `{}`", self.site)
    }
}

impl std::error::Error for FaultError {}

impl From<FaultError> for std::io::Error {
    fn from(e: FaultError) -> Self {
        std::io::Error::other(e)
    }
}

/// Runtime state of one rule: its decision stream and budget.
struct RuleState {
    rule: Rule,
    rng: XorShift64,
    remaining: Option<u64>,
    injected: u64,
}

struct ActivePlan {
    rules: Vec<RuleState>,
}

/// Fast-path switch: false ⇒ every point returns `Ok(())` after one
/// relaxed load.
static ACTIVE: AtomicBool = AtomicBool::new(false);

static PLAN: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// Serialises tests (and any other short-lived drivers) that install
/// process-global fault plans, exactly like `perturb::STRESS_LOCK`.
pub static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn plan_guard() -> MutexGuard<'static, Option<ActivePlan>> {
    // A panic while holding the lock (the `panic` action unwinds from
    // inside `point`) must not wedge every later fault point.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs a fault plan process-wide, replacing any previous plan.
///
/// Each rule gets an independent decision stream forked from the plan
/// seed, so re-installing the same plan replays the same decisions.
pub fn install(plan: &Plan) {
    let mut root = XorShift64::new(plan.seed);
    let rules = plan
        .rules
        .iter()
        .map(|rule| RuleState {
            rule: rule.clone(),
            rng: root.fork(),
            remaining: rule.max_triggers,
            injected: 0,
        })
        .collect();
    *plan_guard() = Some(ActivePlan { rules });
    ACTIVE.store(true, Ordering::Release);
    hook_into_blas();
}

/// Removes any installed plan; every point returns to the zero-cost path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    *plan_guard() = None;
    blob_blas::faultpoint::set_active(false);
}

/// True if a plan is currently installed.
pub fn active() -> bool {
    // relaxed: advisory gate read; the plan is behind its own lock
    ACTIVE.load(Ordering::Relaxed)
}

/// Loads a plan from the `GPU_BLOB_FAULTS` environment variable if set.
///
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable was absent, and the parse error otherwise.
pub fn install_from_env() -> Result<bool, PlanError> {
    match std::env::var("GPU_BLOB_FAULTS") {
        Ok(spec) => {
            let plan = Plan::parse(&spec)?;
            install(&plan);
            Ok(true)
        }
        Err(_) => Ok(false),
    }
}

/// Per-site injection counts of the installed plan (diagnostics and
/// chaos-test assertions). Empty when no plan is installed.
pub fn stats() -> Vec<(String, u64)> {
    let guard = plan_guard();
    match guard.as_ref() {
        Some(active) => active
            .rules
            .iter()
            .map(|r| (r.rule.site.clone(), r.injected))
            .collect(),
        None => Vec::new(),
    }
}

/// Total injections across all rules of the installed plan.
pub fn injected_total() -> u64 {
    stats().iter().map(|(_, n)| n).sum()
}

/// A fault point. Returns `Ok(())` unless an installed plan injects an
/// error here; `panic` rules unwind, `delay` rules sleep then succeed.
#[inline]
pub fn point(site: &'static str) -> Result<(), FaultError> {
    // relaxed: arm gate — a stale read skips at most one injection
    // window; the plan itself is published under the plan lock
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    armed_point(site)
}

/// What an armed point resolved to (the slow path's verdict, also used
/// by the `blob_blas` hook which cannot unwind-into-`Result`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Proceed,
    Fail,
    Panic,
}

#[cold]
fn armed_point(site: &str) -> Result<(), FaultError> {
    match decide(site) {
        Verdict::Proceed => Ok(()),
        Verdict::Fail => Err(FaultError {
            site: site.to_string(),
        }),
        // blob-check: allow(no-unwrap-in-lib): panicking is the `panic` action's contract — chaos tests inject it on purpose
        Verdict::Panic => panic!("injected fault panic at `{site}`"),
    }
}

/// Draws the next decision for `site` from the installed plan. Delay
/// actions sleep here (outside the plan lock) and report `Proceed`.
fn decide(site: &str) -> Verdict {
    let mut delay = None;
    let verdict = {
        let mut guard = plan_guard();
        let Some(active) = guard.as_mut() else {
            return Verdict::Proceed;
        };
        let mut v = Verdict::Proceed;
        for state in active.rules.iter_mut().filter(|r| r.rule.site == site) {
            if state.remaining == Some(0) {
                continue;
            }
            if !state.rng.chance(state.rule.prob) {
                continue;
            }
            if let Some(n) = state.remaining.as_mut() {
                *n -= 1;
            }
            state.injected += 1;
            match state.rule.action {
                Action::Error => v = Verdict::Fail,
                Action::Panic => v = Verdict::Panic,
                Action::Delay(d) => {
                    delay = Some(d);
                    continue;
                }
            }
            break;
        }
        v
    };
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    verdict
}

/// Registers this plane as `blob_blas::faultpoint`'s hook so pool sites
/// (`pool.worker`) resolve against the installed plan. `blob-blas` sits
/// below this crate in the dependency graph, so it exposes a hook rather
/// than calling us directly.
fn hook_into_blas() {
    use blob_blas::faultpoint::{self, Directive};
    faultpoint::set_hook(|site| {
        // relaxed: same arm-gate pattern as `point` above
        if !ACTIVE.load(Ordering::Relaxed) {
            return Directive::Proceed;
        }
        match decide(site) {
            Verdict::Proceed => Directive::Proceed,
            Verdict::Fail => Directive::Die,
            Verdict::Panic => Directive::Panic,
        }
    });
    faultpoint::set_active(true);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let p = Plan::parse("seed=42;serve.sweep:error@0.5x10;runner.size:delay(3ms)@1").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].site, "serve.sweep");
        assert_eq!(p.rules[0].action, Action::Error);
        assert_eq!(p.rules[0].prob, 0.5);
        assert_eq!(p.rules[0].max_triggers, Some(10));
        assert_eq!(p.rules[1].action, Action::Delay(Duration::from_millis(3)));
        assert_eq!(p.rules[1].max_triggers, None);
    }

    #[test]
    fn seed_is_optional() {
        let p = Plan::parse("csv.write:error@1").unwrap();
        assert_eq!(p.seed, DEFAULT_SEED);
    }

    #[test]
    fn rejects_unknown_site() {
        assert_eq!(
            Plan::parse("serve.nope:error@1"),
            Err(PlanError::UnknownSite("serve.nope".to_string()))
        );
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(matches!(
            Plan::parse("csv.write:error@1.5"),
            Err(PlanError::BadProbability(_))
        ));
        assert!(matches!(
            Plan::parse("csv.write:error@-0.1"),
            Err(PlanError::BadProbability(_))
        ));
    }

    #[test]
    fn rejects_zero_count_and_bad_action() {
        assert!(matches!(
            Plan::parse("csv.write:error@1x0"),
            Err(PlanError::BadCount(_))
        ));
        assert!(matches!(
            Plan::parse("csv.write:explode@1"),
            Err(PlanError::BadAction(_))
        ));
        assert!(matches!(
            Plan::parse("csv.write:delay(3s)@1"),
            Err(PlanError::BadAction(_))
        ));
    }

    #[test]
    fn rejects_empty_specs() {
        assert_eq!(Plan::parse(""), Err(PlanError::Empty));
        assert_eq!(Plan::parse("seed=7"), Err(PlanError::Empty));
        assert_eq!(Plan::parse("csv.write:error@1;;"), Err(PlanError::Empty));
    }

    #[test]
    fn disabled_points_are_ok() {
        let _guard = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        for site in sites::ALL {
            assert_eq!(point(site), Ok(()));
        }
    }
}
