//! The workspace's wire format: one JSON encoder and one JSON parser.
//!
//! Every component that speaks JSON — the `blob-serve` HTTP service, the
//! `gpu-blob --json` sweep output, and `blob-check`'s machine-readable
//! findings — goes through this module, so there is exactly one string
//! escaper and one parser in the workspace. Both are hand-rolled and
//! dependency-free, in the same spirit as the rest of the toolchain:
//!
//! - [`Json`] is an ordered document model (object fields keep insertion
//!   order, so output is deterministic and diffable).
//! - [`Json::parse`] is a recursive-descent parser with a depth limit,
//!   full escape handling (including `\uXXXX` surrogate pairs), and
//!   offset-carrying errors — built to safely consume untrusted request
//!   bodies.
//! - [`Json::encode`] / [`Json::encode_pretty`] render compact or
//!   indented text; [`escape`] is the single string escaper.
//!
//! The bottom of the module provides the *domain* encodings shared by the
//! server and the CLI: [`advice_json`], [`sweep_json`], [`call_json`] and
//! the small key vocabularies ([`precision_key`], [`offload_key`], …), so
//! a sweep serialised by `gpu-blob --json` reads identically to one served
//! by `blob-serve`.

use crate::advisor::Advice;
use crate::problem::Problem;
use crate::runner::Sweep;
use blob_sim::{BlasCall, Kernel, Offload, Precision};
use std::fmt::Write as _;

/// Maximum nesting depth [`Json::parse`] accepts before rejecting the
/// document — a guard against stack exhaustion from adversarial input.
pub const MAX_DEPTH: usize = 128;

/// A JSON document. Object fields preserve insertion order so encoded
/// output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Escapes a string for embedding in JSON output (without the surrounding
/// quotes). The only escaper in the workspace.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; encode as null rather than emit garbage.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

impl Json {
    /// Starts an object builder (see [`ObjBuilder`]).
    pub fn obj() -> ObjBuilder {
        ObjBuilder { fields: Vec::new() }
    }

    /// Compact encoding (no insignificant whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Indented encoding (two spaces per level) for human-facing output
    /// such as baseline files.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.encode_pretty_into(&mut out, 0);
        out
    }

    fn encode_pretty_into(&self, out: &mut String, level: usize) {
        const INDENT: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=level {
                        out.push_str(INDENT);
                    }
                    item.encode_pretty_into(out, level + 1);
                }
                out.push('\n');
                for _ in 0..level {
                    out.push_str(INDENT);
                }
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    for _ in 0..=level {
                        out.push_str(INDENT);
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\": ");
                    v.encode_pretty_into(out, level + 1);
                }
                out.push('\n');
                for _ in 0..level {
                    out.push_str(INDENT);
                }
                out.push('}');
            }
            other => other.encode_into(out),
        }
    }

    /// Parses a complete JSON document. Trailing non-whitespace input is an
    /// error, as is nesting deeper than [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            text,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Parses a byte slice (e.g. an HTTP request body): must be UTF-8.
    pub fn parse_bytes(body: &[u8]) -> Result<Json, ParseError> {
        match std::str::from_utf8(body) {
            Ok(text) => Json::parse(text),
            Err(e) => Err(ParseError {
                offset: e.valid_up_to(),
                message: "body is not valid UTF-8".to_string(),
            }),
        }
    }

    /// Looks up a field of an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.trunc() == *n && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Self {
        Json::Num(n as f64)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Self {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Self {
        Json::Arr(items)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Json::Null,
        }
    }
}

/// Fluent object construction with stable field order:
///
/// ```
/// use blob_core::wire::Json;
/// let j = Json::obj().field("ok", true).field("n", 3usize).build();
/// assert_eq!(j.encode(), r#"{"ok":true,"n":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// Appends one field.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

// ---------------------------------------------------------------------------
// recursive-descent parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]` in array"));
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}` in object"));
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // high surrogate: a low surrogate must follow
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u code point")),
                            }
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                    run_start = self.pos;
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.eat(b'-') {}
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.text[start..self.pos];
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(ParseError {
                offset: start,
                message: format!("invalid number `{text}`"),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// domain encodings shared by blob-serve and the CLI
// ---------------------------------------------------------------------------

/// The wire spelling of a precision: `"f32"` / `"f64"`.
pub fn precision_key(p: Precision) -> &'static str {
    match p {
        Precision::F32 => "f32",
        Precision::F64 => "f64",
    }
}

/// Parses the wire spelling of a precision (also accepts `s`/`d` and
/// `single`/`double`, like the CLI).
pub fn parse_precision(s: &str) -> Option<Precision> {
    match s.to_ascii_lowercase().as_str() {
        "f32" | "s" | "single" | "fp32" => Some(Precision::F32),
        "f64" | "d" | "double" | "fp64" => Some(Precision::F64),
        _ => None,
    }
}

/// The wire spelling of an offload strategy: `"once"` / `"always"` /
/// `"usm"` — used as object keys, so lower-case and stable.
pub fn offload_key(o: Offload) -> &'static str {
    match o {
        Offload::TransferOnce => "once",
        Offload::TransferAlways => "always",
        Offload::Unified => "usm",
    }
}

/// Finds a problem type by its [`Problem::id`] wire spelling.
pub fn parse_problem_id(id: &str) -> Option<Problem> {
    Problem::all().into_iter().find(|p| p.id() == id)
}

/// Encodes a kernel as `{"op","m","n"[,"k"]}`.
pub fn kernel_json(k: &Kernel) -> Json {
    match *k {
        Kernel::Gemm { m, n, k } => Json::obj()
            .field("op", "gemm")
            .field("m", m)
            .field("n", n)
            .field("k", k)
            .build(),
        Kernel::Gemv { m, n } => Json::obj()
            .field("op", "gemv")
            .field("m", m)
            .field("n", n)
            .build(),
    }
}

/// Encodes a full BLAS call (kernel + precision + scalars).
pub fn call_json(c: &BlasCall) -> Json {
    let Json::Obj(mut fields) = kernel_json(&c.kernel) else {
        return Json::Null; // kernel_json always returns an object
    };
    fields.push(("precision".to_string(), precision_key(c.precision).into()));
    fields.push(("alpha".to_string(), c.alpha.into()));
    fields.push(("beta".to_string(), c.beta.into()));
    Json::Obj(fields)
}

/// Encodes an advisor verdict + evidence, the `/advise` response body.
pub fn advice_json(a: &Advice) -> Json {
    Json::obj()
        .field("call", call_json(&a.call))
        .field("iterations", a.iterations)
        .field("offload", offload_key(a.offload))
        .field("cpu_seconds", a.cpu_seconds)
        .field("gpu_seconds", a.gpu_seconds)
        .field("speedup", a.speedup)
        .field("verdict", a.verdict.id())
        .field("summary", a.summary())
        .build()
}

/// Encodes one sweep, including per-size records and the offload-threshold
/// table — the document `gpu-blob --json` emits per (problem, precision,
/// iteration count).
pub fn sweep_json(s: &Sweep) -> Json {
    Json::obj()
        .field("system", s.system.as_str())
        .field("problem", s.problem.id())
        .field("label", s.problem.label())
        .field("precision", precision_key(s.precision))
        .field("iterations", s.iterations)
        .field(
            "thresholds",
            thresholds_json(&s.records, |o| s.threshold(o)),
        )
        .field("records", records_json(&s.records))
        .build()
}

/// Encodes a custom-family sweep in the same document shape as
/// [`sweep_json`] (the `problem` field carries the family name).
pub fn custom_sweep_json(s: &crate::custom_runner::CustomSweep) -> Json {
    Json::obj()
        .field("system", s.system.as_str())
        .field("problem", s.problem.name.as_str())
        .field("label", s.problem.name.as_str())
        .field("precision", precision_key(s.precision))
        .field("iterations", s.iterations)
        .field(
            "thresholds",
            thresholds_json(&s.records, |o| s.threshold(o)),
        )
        .field("records", records_json(&s.records))
        .build()
}

/// The per-offload threshold table: `{"once": {"param",...dims} | null, …}`
/// over whichever offload strategies the records actually measured.
fn thresholds_json(
    records: &[crate::runner::SizeRecord],
    threshold: impl Fn(Offload) -> Option<Kernel>,
) -> Json {
    let offloads: Vec<Offload> = records
        .first()
        .map(|r| r.gpu.iter().map(|g| g.offload).collect())
        .unwrap_or_default();
    let mut thresholds = Json::obj();
    for &o in &offloads {
        let cell = threshold(o).and_then(|kernel| {
            records
                .iter()
                .find(|r| r.kernel == kernel)
                .map(|r| (r.param, kernel))
        });
        let value = match cell {
            Some((param, kernel)) => {
                let Json::Obj(mut fields) = kernel_json(&kernel) else {
                    return Json::Null; // kernel_json always returns an object
                };
                fields.insert(0, ("param".to_string(), param.into()));
                Json::Obj(fields)
            }
            None => Json::Null,
        };
        thresholds = thresholds.field(offload_key(o), value);
    }
    thresholds.build()
}

/// One JSON object per measured size, with a nested object per offload.
fn records_json(records: &[crate::runner::SizeRecord]) -> Json {
    let records: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut gpu = Json::obj();
            for g in &r.gpu {
                gpu = gpu.field(
                    offload_key(g.offload),
                    Json::obj()
                        .field("seconds", g.seconds)
                        .field("gflops", g.gflops)
                        .build(),
                );
            }
            Json::obj()
                .field("param", r.param)
                .field("kernel", kernel_json(&r.kernel))
                .field("cpu_seconds", r.cpu_seconds)
                .field("cpu_gflops", r.cpu_gflops)
                .field("gpu", gpu.build())
                .build()
        })
        .collect();
    Json::Arr(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{advise, Verdict};
    use crate::problem::GemmProblem;
    use crate::runner::{run_sweep, SweepConfig};
    use blob_sim::presets;

    // --- escaping (the satellite's required cases) -----------------------

    #[test]
    fn escape_control_chars() {
        assert_eq!(escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
        assert_eq!(escape("\u{0001}\u{001f}"), "\\u0001\\u001f");
        assert_eq!(escape("\u{0008}\u{000C}"), "\\u0008\\u000c");
    }

    #[test]
    fn escape_quotes_and_backslashes() {
        assert_eq!(escape(r#"say "hi" \ bye"#), r#"say \"hi\" \\ bye"#);
    }

    #[test]
    fn escape_passes_non_ascii_through() {
        // non-ASCII is valid JSON as-is; no \u escaping needed
        assert_eq!(escape("héllo 世界 🚀"), "héllo 世界 🚀");
    }

    #[test]
    fn escaped_strings_reparse_to_the_original() {
        for s in [
            "plain",
            "quote\" slash\\ control\n\t\r",
            "\u{0000}\u{001F}",
            "héllo 世界 🚀",
        ] {
            let doc = format!("\"{}\"", escape(s));
            assert_eq!(Json::parse(&doc).unwrap(), Json::Str(s.to_string()));
        }
    }

    // --- encoding ---------------------------------------------------------

    #[test]
    fn encode_scalars() {
        assert_eq!(Json::Null.encode(), "null");
        assert_eq!(Json::Bool(true).encode(), "true");
        assert_eq!(Json::Num(3.0).encode(), "3");
        assert_eq!(Json::Num(0.25).encode(), "0.25");
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
        assert_eq!(Json::Str("a\"b".into()).encode(), r#""a\"b""#);
    }

    #[test]
    fn encode_compound_preserves_field_order() {
        let j = Json::obj()
            .field("z", 1usize)
            .field("a", Json::Arr(vec![Json::Null, true.into()]))
            .build();
        assert_eq!(j.encode(), r#"{"z":1,"a":[null,true]}"#);
    }

    #[test]
    fn pretty_encoding_is_reparseable() {
        let j = Json::obj()
            .field("xs", Json::Arr(vec![1usize.into(), 2usize.into()]))
            .field("s", "line1\nline2")
            .build();
        let pretty = j.encode_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), j);
        assert_eq!(Json::Arr(vec![]).encode_pretty(), "[]");
    }

    // --- parsing ----------------------------------------------------------

    #[test]
    fn parse_round_trips_compound_documents() {
        let text = r#"{"a":[1,2.5,-3e2,null,true,false],"b":{"c":"d"},"e":[]}"#;
        let j = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&j.encode()).unwrap(), j);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(
            j.get("b").unwrap().get("c").and_then(Json::as_str),
            Some("d")
        );
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\u4e16""#).unwrap(),
            Json::Str("Aé世".into())
        );
        // surrogate pair: 🚀
        assert_eq!(
            Json::parse(r#""\ud83d\ude80""#).unwrap(),
            Json::Str("🚀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\ude80""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "01x",
            "\"",
            "\"\\q\"",
            "[1] garbage",
            "{'a':1}",
            "+1",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_reports_offsets() {
        let e = Json::parse("[1, x]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn parse_depth_limit() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(16).to_string() + &"]".repeat(16);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_bytes_rejects_non_utf8() {
        assert!(Json::parse_bytes(b"{\"a\":1}").is_ok());
        assert!(Json::parse_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn integer_accessors() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    // --- domain encodings -------------------------------------------------

    #[test]
    fn vocabulary_round_trips() {
        for p in Precision::ALL {
            assert_eq!(parse_precision(precision_key(p)), Some(p));
        }
        for o in Offload::ALL {
            assert_eq!(offload_key(o).parse::<Offload>().ok(), Some(o));
        }
        for prob in Problem::all() {
            assert_eq!(parse_problem_id(prob.id()), Some(prob));
        }
        assert_eq!(parse_problem_id("nope"), None);
        assert_eq!(parse_precision("f16"), None);
    }

    #[test]
    fn advice_json_shape() {
        let sys = presets::isambard_ai();
        let call = BlasCall::gemm(Precision::F32, 2048, 2048, 2048);
        let a = advise(&sys, &call, 32, Offload::TransferOnce);
        assert_eq!(a.verdict, Verdict::Offload);
        let j = advice_json(&a);
        assert_eq!(j.get("verdict").and_then(Json::as_str), Some("offload"));
        assert_eq!(j.get("offload").and_then(Json::as_str), Some("once"));
        assert!(j.get("speedup").and_then(Json::as_f64).unwrap() > 2.0);
        assert_eq!(
            j.get("call")
                .and_then(|c| c.get("op"))
                .and_then(Json::as_str),
            Some("gemm")
        );
        // the encoding is parseable JSON
        assert_eq!(Json::parse(&j.encode()).unwrap(), j);
    }

    #[test]
    fn no_gpu_advice_encodes_nulls() {
        let sys = presets::isambard_ai_armpl();
        let call = BlasCall::gemv(Precision::F64, 64, 64);
        let a = advise(&sys, &call, 1, Offload::Unified);
        let j = advice_json(&a);
        assert!(j.get("gpu_seconds").unwrap().is_null());
        assert!(j.get("speedup").unwrap().is_null());
        assert_eq!(j.get("verdict").and_then(Json::as_str), Some("no-gpu"));
    }

    #[test]
    fn sweep_json_shape() {
        let sys = presets::dawn();
        let cfg = SweepConfig::new(1, 48, 4);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &cfg,
        );
        let j = sweep_json(&sweep);
        assert_eq!(j.get("system").and_then(Json::as_str), Some("DAWN"));
        assert_eq!(j.get("problem").and_then(Json::as_str), Some("gemm_square"));
        assert_eq!(j.get("records").and_then(Json::as_arr).unwrap().len(), 48);
        let th = j.get("thresholds").unwrap();
        for key in ["once", "always", "usm"] {
            assert!(th.get(key).is_some(), "missing thresholds.{key}");
        }
        assert_eq!(Json::parse(&j.encode()).unwrap(), j);
    }

    #[test]
    fn cpu_only_sweep_json_has_empty_thresholds() {
        let sys = presets::isambard_ai_armpl();
        let cfg = SweepConfig::new(1, 8, 1);
        let sweep = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F64,
            &cfg,
        );
        let j = sweep_json(&sweep);
        assert_eq!(j.get("thresholds").and_then(Json::as_obj).unwrap().len(), 0);
    }
}
