//! # blob-core — the GPU BLAS Offload Benchmark harness
//!
//! The paper's primary contribution, as a library:
//!
//! - [`problem`] — the 14 problem types (square + non-square GEMM/GEMV)
//!   the benchmark sweeps (§III-C, Fig 1)
//! - [`backend`] — timing sources: calibrated system models (`blob-sim`)
//!   or real wall-clock measurement of this repo's own kernels
//! - [`runner`] — the size sweep: CPU then each GPU transfer type per
//!   size, interleaved, with the paper's GFLOP/s accounting (§III-A)
//! - [`threshold`] — GPU offload-threshold detection (§III-D)
//! - [`validate`] — constant-seed data init + 0.1 % checksum comparison
//!   between independent kernel code paths (§III-B)
//! - [`csv`] — the artifact's per-problem-type CSV output and its parser
//! - [`wire`] — the workspace's JSON wire format: one escaper, one
//!   encoder, one recursive-descent parser, shared by `blob-serve`,
//!   `gpu-blob --json`, and `blob-check`
//! - [`schema`] — the versioned v1 request/response schema: `parse_*`
//!   validators paired with `wire`'s `*_json` encoders, defined once
//! - [`trace`] — structured tracing & profiling: per-thread span
//!   recording, chrome://tracing export, aggregated text profiles
//!
//! ## Quickstart
//!
//! ```
//! use blob_core::problem::{GemmProblem, Problem};
//! use blob_core::runner::{run_sweep, SweepConfig};
//! use blob_sim::{presets, Offload, Precision};
//!
//! let system = presets::isambard_ai();
//! let cfg = SweepConfig::new(1, 256, 8);
//! let sweep = run_sweep(&system, Problem::Gemm(GemmProblem::Square), Precision::F32, &cfg);
//! let threshold = sweep.threshold(Offload::TransferOnce);
//! assert!(threshold.is_some(), "square GEMM offloads readily on a GH200");
//! ```

pub mod advisor;
pub mod atomicio;
pub mod backend;
pub mod checkpoint;
pub mod csv;
pub mod custom;
pub mod custom_runner;
pub mod fault;
pub mod problem;
pub mod rng;
pub mod runner;
pub mod schema;
pub mod testkit;
pub mod threshold;
pub mod trace;
pub mod validate;
pub mod wire;

// The argument-contract validator lives next to the kernels it guards
// (`blob-blas`), but harness users get it from here too so one import path
// covers the whole vocabulary.
pub use blob_blas::contract;
pub use blob_blas::contract::ContractError;

pub use advisor::{advise, advise_across, Advice, Verdict};
pub use backend::{Backend, HostCpu};
pub use custom::{CustomProblem, DimRule};
pub use custom_runner::{run_custom_sweep, CustomSweep};
pub use problem::{GemmProblem, GemvProblem, Problem};
pub use runner::{
    run_sweep, run_sweep_pooled, ConfigError, GpuSample, SizeRecord, Sweep, SweepConfig,
    SweepConfigBuilder,
};
pub use threshold::{offload_threshold_from_times, offload_threshold_index, ThresholdPoint};
pub use validate::{validate_call, ValidationReport, CHECKSUM_TOLERANCE};

// Re-export the model vocabulary so harness users need one import path.
pub use blob_sim::{BlasCall, BlasCallBuilder, CallError, Kernel, KernelKind, Offload, Precision};
