//! Problem types: the fixed relationships between a BLAS kernel's
//! dimensions that GPU-BLOB sweeps (paper §III-C, Fig 1).
//!
//! A problem type maps a single *size parameter* `p` to concrete
//! dimensions; the benchmark then executes every `p` whose dimensions all
//! lie within the user's `[s, d]` range. Alongside the square problems the
//! paper defines eight non-square GEMM types and four non-square GEMV
//! types, chosen so at least one input matrix is rectangular — the shapes
//! real applications (k-means, LU, neural networks) actually use.

use blob_sim::{Kernel, KernelKind};

/// GEMM problem types (square + the eight non-square types of Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemmProblem {
    /// M = N = K.
    Square,
    /// M = N, K = 16M — deep inner dimension.
    TallK,
    /// M = N = 32, K ≥ 1 — tiny output, growing inner dimension.
    FixedMn32,
    /// K = N, M = 16K — tall output panel.
    TallM,
    /// K = N = 32, M ≥ 1 — tall skinny A, tiny B.
    FixedKn32,
    /// M = K, N = 16K — wide output panel.
    WideN,
    /// M = K = 32, N ≥ 1 — tiny A, wide B.
    FixedMk32,
    /// M = N, K = 32 — square output, shallow inner dimension.
    SquareK32,
    /// M = N, M = 16K — square output, inner dimension a sixteenth of M.
    SixteenthK,
}

impl GemmProblem {
    /// All GEMM problem types in the paper's presentation order.
    pub const ALL: [GemmProblem; 9] = [
        GemmProblem::Square,
        GemmProblem::TallK,
        GemmProblem::FixedMn32,
        GemmProblem::TallM,
        GemmProblem::FixedKn32,
        GemmProblem::WideN,
        GemmProblem::FixedMk32,
        GemmProblem::SquareK32,
        GemmProblem::SixteenthK,
    ];

    /// The non-square types, in Table V's row order.
    pub const NON_SQUARE: [GemmProblem; 8] = [
        GemmProblem::TallK,
        GemmProblem::FixedMn32,
        GemmProblem::TallM,
        GemmProblem::FixedKn32,
        GemmProblem::WideN,
        GemmProblem::FixedMk32,
        GemmProblem::SquareK32,
        GemmProblem::SixteenthK,
    ];
}

/// GEMV problem types (square + the four non-square types of Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GemvProblem {
    /// M = N.
    Square,
    /// M = 16N — tall matrix.
    TallM,
    /// N = 32, M ≥ 1 — tall skinny matrix.
    FixedN32,
    /// N = 16M — wide matrix.
    WideN,
    /// M = 32, N ≥ 1 — short wide matrix.
    FixedM32,
}

impl GemvProblem {
    /// All GEMV problem types in the paper's presentation order.
    pub const ALL: [GemvProblem; 5] = [
        GemvProblem::Square,
        GemvProblem::TallM,
        GemvProblem::FixedN32,
        GemvProblem::WideN,
        GemvProblem::FixedM32,
    ];

    /// The non-square types, in Table VI's row order.
    pub const NON_SQUARE: [GemvProblem; 4] = [
        GemvProblem::TallM,
        GemvProblem::FixedN32,
        GemvProblem::WideN,
        GemvProblem::FixedM32,
    ];
}

/// Any problem type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Problem {
    /// A GEMM problem family.
    Gemm(GemmProblem),
    /// A GEMV problem family.
    Gemv(GemvProblem),
}

impl Problem {
    /// All 14 problem types (9 GEMM + 5 GEMV) — one output CSV each per
    /// precision, matching the artifact's 28 files per run.
    pub fn all() -> Vec<Problem> {
        GemmProblem::ALL
            .iter()
            .map(|&g| Problem::Gemm(g))
            .chain(GemvProblem::ALL.iter().map(|&v| Problem::Gemv(v)))
            .collect()
    }

    /// The kernel family this problem type drives.
    pub fn kind(&self) -> KernelKind {
        match self {
            Problem::Gemm(_) => KernelKind::Gemm,
            Problem::Gemv(_) => KernelKind::Gemv,
        }
    }

    /// Human-readable definition as the paper writes it, e.g. `"M=N, K=16M"`.
    pub fn label(&self) -> &'static str {
        match self {
            Problem::Gemm(GemmProblem::Square) => "M=N=K",
            Problem::Gemm(GemmProblem::TallK) => "M=N, K=16M",
            Problem::Gemm(GemmProblem::FixedMn32) => "M=N=32, K>=1",
            Problem::Gemm(GemmProblem::TallM) => "K=N, M=16K",
            Problem::Gemm(GemmProblem::FixedKn32) => "K=N=32, M>=1",
            Problem::Gemm(GemmProblem::WideN) => "M=K, N=16K",
            Problem::Gemm(GemmProblem::FixedMk32) => "M=K=32, N>=1",
            Problem::Gemm(GemmProblem::SquareK32) => "M=N, K=32",
            Problem::Gemm(GemmProblem::SixteenthK) => "M=N, M=16K",
            Problem::Gemv(GemvProblem::Square) => "M=N",
            Problem::Gemv(GemvProblem::TallM) => "M=16N",
            Problem::Gemv(GemvProblem::FixedN32) => "N=32, M>=1",
            Problem::Gemv(GemvProblem::WideN) => "N=16M",
            Problem::Gemv(GemvProblem::FixedM32) => "M=32, N>=1",
        }
    }

    /// Filesystem-safe identifier used for CSV file names.
    pub fn id(&self) -> &'static str {
        match self {
            Problem::Gemm(GemmProblem::Square) => "gemm_square",
            Problem::Gemm(GemmProblem::TallK) => "gemm_tall_k",
            Problem::Gemm(GemmProblem::FixedMn32) => "gemm_fixed_mn32",
            Problem::Gemm(GemmProblem::TallM) => "gemm_tall_m",
            Problem::Gemm(GemmProblem::FixedKn32) => "gemm_fixed_kn32",
            Problem::Gemm(GemmProblem::WideN) => "gemm_wide_n",
            Problem::Gemm(GemmProblem::FixedMk32) => "gemm_fixed_mk32",
            Problem::Gemm(GemmProblem::SquareK32) => "gemm_square_k32",
            Problem::Gemm(GemmProblem::SixteenthK) => "gemm_sixteenth_k",
            Problem::Gemv(GemvProblem::Square) => "gemv_square",
            Problem::Gemv(GemvProblem::TallM) => "gemv_tall_m",
            Problem::Gemv(GemvProblem::FixedN32) => "gemv_fixed_n32",
            Problem::Gemv(GemvProblem::WideN) => "gemv_wide_n",
            Problem::Gemv(GemvProblem::FixedM32) => "gemv_fixed_m32",
        }
    }

    /// Concrete dimensions for size parameter `p >= 1`.
    pub fn dims(&self, p: usize) -> Kernel {
        let p = p.max(1);
        match self {
            Problem::Gemm(g) => {
                let (m, n, k) = match g {
                    GemmProblem::Square => (p, p, p),
                    GemmProblem::TallK => (p, p, 16 * p),
                    GemmProblem::FixedMn32 => (32, 32, p),
                    GemmProblem::TallM => (16 * p, p, p),
                    GemmProblem::FixedKn32 => (p, 32, 32),
                    GemmProblem::WideN => (p, 16 * p, p),
                    GemmProblem::FixedMk32 => (32, p, 32),
                    GemmProblem::SquareK32 => (p, p, 32),
                    GemmProblem::SixteenthK => (p, p, (p / 16).max(1)),
                };
                Kernel::Gemm { m, n, k }
            }
            Problem::Gemv(v) => {
                let (m, n) = match v {
                    GemvProblem::Square => (p, p),
                    GemvProblem::TallM => (16 * p, p),
                    GemvProblem::FixedN32 => (p, 32),
                    GemvProblem::WideN => (p, 16 * p),
                    GemvProblem::FixedM32 => (32, p),
                };
                Kernel::Gemv { m, n }
            }
        }
    }

    /// The largest size parameter whose dimensions all fit within `max_dim`
    /// (the benchmark's `d` argument).
    pub fn max_param(&self, max_dim: usize) -> usize {
        let scaled_cap = max_dim / 16; // types with a 16x dimension
        match self {
            Problem::Gemm(GemmProblem::TallK)
            | Problem::Gemm(GemmProblem::TallM)
            | Problem::Gemm(GemmProblem::WideN)
            | Problem::Gemv(GemvProblem::TallM)
            | Problem::Gemv(GemvProblem::WideN) => scaled_cap,
            _ => max_dim,
        }
    }

    /// The size parameters to sweep for user range `[s, d]` and `step`.
    ///
    /// Sweeps `p = s, s+step, …` up to [`max_param`](Self::max_param)`(d)`,
    /// always including the top size so thresholds at the range edge are
    /// observable. Problem types with a fixed dimension of 32 additionally
    /// require `d >= 32` (otherwise they yield no sizes).
    pub fn params(&self, s: usize, d: usize, step: usize) -> Vec<usize> {
        let needs_32 = matches!(
            self,
            Problem::Gemm(GemmProblem::FixedMn32)
                | Problem::Gemm(GemmProblem::FixedKn32)
                | Problem::Gemm(GemmProblem::FixedMk32)
                | Problem::Gemm(GemmProblem::SquareK32)
                | Problem::Gemv(GemvProblem::FixedN32)
                | Problem::Gemv(GemvProblem::FixedM32)
        );
        if needs_32 && d < 32 {
            return vec![];
        }
        let lo = s.max(1);
        let hi = self.max_param(d);
        if hi < lo {
            return vec![];
        }
        let step = step.max(1);
        let mut out: Vec<usize> = (lo..=hi).step_by(step).collect();
        if out.last() != Some(&hi) {
            out.push(hi);
        }
        out
    }
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_problem_types() {
        let all = Problem::all();
        assert_eq!(all.len(), 14);
        assert_eq!(
            all.iter().filter(|p| p.kind() == KernelKind::Gemm).count(),
            9
        );
        assert_eq!(
            all.iter().filter(|p| p.kind() == KernelKind::Gemv).count(),
            5
        );
    }

    #[test]
    fn dims_satisfy_their_definitions() {
        for p in [1usize, 7, 32, 100, 255] {
            match Problem::Gemm(GemmProblem::Square).dims(p) {
                Kernel::Gemm { m, n, k } => assert!(m == p && n == p && k == p),
                _ => panic!(),
            }
            match Problem::Gemm(GemmProblem::TallK).dims(p) {
                Kernel::Gemm { m, n, k } => assert!(m == n && k == 16 * m && m == p),
                _ => panic!(),
            }
            match Problem::Gemm(GemmProblem::FixedMn32).dims(p) {
                Kernel::Gemm { m, n, k } => assert!(m == 32 && n == 32 && k == p),
                _ => panic!(),
            }
            match Problem::Gemm(GemmProblem::TallM).dims(p) {
                Kernel::Gemm { m, n, k } => assert!(k == n && m == 16 * k && k == p),
                _ => panic!(),
            }
            match Problem::Gemm(GemmProblem::WideN).dims(p) {
                Kernel::Gemm { m, n, k } => assert!(m == k && n == 16 * k && k == p),
                _ => panic!(),
            }
            match Problem::Gemm(GemmProblem::SquareK32).dims(p) {
                Kernel::Gemm { m, n, k } => assert!(m == n && k == 32 && m == p),
                _ => panic!(),
            }
            match Problem::Gemv(GemvProblem::TallM).dims(p) {
                Kernel::Gemv { m, n } => assert!(m == 16 * n && n == p),
                _ => panic!(),
            }
            match Problem::Gemv(GemvProblem::FixedM32).dims(p) {
                Kernel::Gemv { m, n } => assert!(m == 32 && n == p),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn sixteenth_k_floors_at_one() {
        match Problem::Gemm(GemmProblem::SixteenthK).dims(5) {
            Kernel::Gemm { m, n, k } => {
                assert_eq!((m, n), (5, 5));
                assert_eq!(k, 1); // 5/16 floors to 0, clamped to 1
            }
            _ => panic!(),
        }
        match Problem::Gemm(GemmProblem::SixteenthK).dims(160) {
            Kernel::Gemm { k, .. } => assert_eq!(k, 10),
            _ => panic!(),
        }
    }

    #[test]
    fn max_param_respects_scaled_dimensions() {
        let d = 4096;
        assert_eq!(Problem::Gemm(GemmProblem::Square).max_param(d), 4096);
        assert_eq!(Problem::Gemm(GemmProblem::TallK).max_param(d), 256); // 16*256 = 4096
        assert_eq!(Problem::Gemv(GemvProblem::WideN).max_param(d), 256);
        assert_eq!(Problem::Gemm(GemmProblem::FixedMn32).max_param(d), 4096);
    }

    #[test]
    fn all_swept_dims_stay_in_range() {
        let (s, d) = (1, 512);
        for prob in Problem::all() {
            for p in prob.params(s, d, 7) {
                let (m, n, k) = prob.dims(p).dims();
                assert!(m <= d && n <= d && k <= d, "{prob:?} p={p} -> {m},{n},{k}");
                assert!(m >= 1 && n >= 1 && k >= 1);
            }
        }
    }

    #[test]
    fn params_includes_endpoint() {
        let prob = Problem::Gemm(GemmProblem::Square);
        let ps = prob.params(1, 100, 7);
        assert_eq!(*ps.first().unwrap(), 1);
        assert_eq!(*ps.last().unwrap(), 100);
        // strictly increasing
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fixed32_types_need_d_at_least_32() {
        let prob = Problem::Gemm(GemmProblem::FixedMn32);
        assert!(prob.params(1, 31, 1).is_empty());
        assert!(!prob.params(1, 32, 1).is_empty());
    }

    #[test]
    fn ids_unique_and_labels_nonempty() {
        let all = Problem::all();
        let mut ids: Vec<&str> = all.iter().map(|p| p.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 14, "duplicate CSV ids");
        assert!(all.iter().all(|p| !p.label().is_empty()));
    }

    #[test]
    fn step_one_sweeps_every_size() {
        let prob = Problem::Gemv(GemvProblem::Square);
        let ps = prob.params(1, 64, 1);
        assert_eq!(ps, (1..=64).collect::<Vec<_>>());
    }
}
