//! The offload advisor: the paper's intended *use* of the offload
//! threshold, as a public API.
//!
//! §III-D describes the workflow: "By relating an application's matrix /
//! vector shape and size to those evaluated by GPU-BLOB, configuring the
//! iteration count to approximate the number of BLAS kernel computations,
//! and relating the data movement characteristics to one of the data
//! transfer types, a user can assess whether it would be worth porting
//! their application to use a GPU" — saving the porting effort when the
//! GPU provides no benefit. [`advise`] runs that assessment against a
//! timing backend and returns a structured verdict.

use crate::backend::Backend;
use blob_sim::{BlasCall, Offload};

/// The recommendation for one application profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The GPU wins by enough to justify porting (speedup ≥ 2).
    Offload,
    /// The GPU wins, but modestly — weigh the porting effort (1.05–2×).
    Marginal,
    /// Within noise of a tie (0.95–1.05×): an explicit near-threshold
    /// band. Offline, the advice is to measure on the real machine; the
    /// online dispatch plane's hysteresis consumes this verdict by
    /// holding whatever route it is already on.
    Borderline,
    /// The CPU wins; porting would be wasted effort.
    StayOnCpu,
    /// The backend cannot time a GPU (CPU-only configuration).
    NoGpu,
}

impl Verdict {
    /// Stable wire/CSV identifier for the verdict, used by the JSON
    /// encodings in [`crate::wire`] and the `blob-serve` API.
    pub fn id(&self) -> &'static str {
        match self {
            Verdict::Offload => "offload",
            Verdict::Marginal => "marginal",
            Verdict::Borderline => "borderline",
            Verdict::StayOnCpu => "stay-on-cpu",
            Verdict::NoGpu => "no-gpu",
        }
    }

    /// Parses a wire identifier back into a verdict. Accepts the legacy
    /// `"toss-up"` spelling as an alias for [`Verdict::Borderline`]
    /// (pre-dispatch-plane clients and CSVs used it).
    pub fn from_id(id: &str) -> Option<Self> {
        match id {
            "offload" => Some(Verdict::Offload),
            "marginal" => Some(Verdict::Marginal),
            "borderline" | "toss-up" => Some(Verdict::Borderline),
            "stay-on-cpu" => Some(Verdict::StayOnCpu),
            "no-gpu" => Some(Verdict::NoGpu),
            _ => None,
        }
    }
}

/// A structured offload recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// The application's representative BLAS call.
    pub call: BlasCall,
    /// Kernel invocations between data movements.
    pub iterations: u32,
    /// Data-movement pattern assumed for the GPU timing.
    pub offload: Offload,
    /// Total CPU seconds for the profile.
    pub cpu_seconds: f64,
    /// Total GPU seconds (transfers included), when a GPU exists.
    pub gpu_seconds: Option<f64>,
    /// `cpu / gpu` (> 1 means the GPU is faster).
    pub speedup: Option<f64>,
    /// The categorical recommendation.
    pub verdict: Verdict,
}

impl Advice {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        match (self.verdict, self.speedup) {
            (Verdict::NoGpu, _) => "no GPU available on this backend".to_string(),
            (v, Some(s)) => format!(
                "{} ({}x {} on the GPU)",
                match v {
                    Verdict::Offload => "offload — clear win",
                    Verdict::Marginal => "offload, but weigh the porting effort",
                    Verdict::Borderline => "borderline: profile on the real machine",
                    Verdict::StayOnCpu => "stay on the CPU",
                    Verdict::NoGpu => unreachable!(),
                },
                (if s >= 1.0 { s } else { 1.0 / s } * 100.0).round() / 100.0,
                if s >= 1.0 { "faster" } else { "slower" },
            ),
            _ => "no GPU timing available".to_string(),
        }
    }
}

/// Assesses one application profile on a backend.
pub fn advise(backend: &dyn Backend, call: &BlasCall, iterations: u32, offload: Offload) -> Advice {
    let cpu_seconds = backend.cpu_seconds(call, iterations);
    let gpu_seconds = backend.gpu_seconds(call, iterations, offload);
    let speedup = gpu_seconds.map(|g| cpu_seconds / g);
    let verdict = match speedup {
        None => Verdict::NoGpu,
        Some(s) if s >= 2.0 => Verdict::Offload,
        Some(s) if s > 1.05 => Verdict::Marginal,
        Some(s) if s > 0.95 => Verdict::Borderline,
        Some(_) => Verdict::StayOnCpu,
    };
    Advice {
        call: *call,
        iterations,
        offload,
        cpu_seconds,
        gpu_seconds,
        speedup,
        verdict,
    }
}

/// Assesses a profile across several systems at once, returning
/// `(system name, advice)` pairs — the cross-system comparison the paper's
/// tables make by hand.
pub fn advise_across<'a>(
    backends: impl IntoIterator<Item = &'a dyn Backend>,
    call: &BlasCall,
    iterations: u32,
    offload: Offload,
) -> Vec<(String, Advice)> {
    backends
        .into_iter()
        .map(|b| (b.name(), advise(b, call, iterations, offload)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::HostCpu;
    use blob_sim::{presets, Precision};

    #[test]
    fn large_gemm_offloads_everywhere() {
        let call = BlasCall::gemm(Precision::F32, 4096, 4096, 4096);
        for sys in presets::evaluation_systems() {
            let a = advise(&sys, &call, 32, Offload::TransferOnce);
            assert_eq!(a.verdict, Verdict::Offload, "{}", sys.name);
            assert!(a.speedup.unwrap() > 2.0);
            assert!(a.summary().contains("clear win"));
        }
    }

    #[test]
    fn tiny_gemm_stays_on_cpu() {
        let call = BlasCall::gemm(Precision::F64, 8, 8, 8);
        let a = advise(&presets::dawn(), &call, 1, Offload::TransferOnce);
        assert_eq!(a.verdict, Verdict::StayOnCpu);
        assert!(a.summary().contains("stay on the CPU"));
    }

    #[test]
    fn gemv_transfer_always_never_advised() {
        let call = BlasCall::gemv(Precision::F64, 2048, 2048);
        for sys in presets::evaluation_systems() {
            let a = advise(&sys, &call, 64, Offload::TransferAlways);
            assert!(
                matches!(a.verdict, Verdict::StayOnCpu | Verdict::Borderline),
                "{}: {:?}",
                sys.name,
                a.verdict
            );
        }
    }

    #[test]
    fn cpu_only_backend_reports_no_gpu() {
        let host = HostCpu::with_threads(1);
        let call = BlasCall::gemm(Precision::F64, 32, 32, 32);
        let a = advise(&host, &call, 1, Offload::TransferOnce);
        assert_eq!(a.verdict, Verdict::NoGpu);
        assert!(a.gpu_seconds.is_none());
        assert!(a.summary().contains("no GPU"));
    }

    #[test]
    fn advise_across_names_systems() {
        let systems = presets::evaluation_systems();
        let backends: Vec<&dyn Backend> = systems.iter().map(|s| s as &dyn Backend).collect();
        let call = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        let all = advise_across(backends, &call, 8, Offload::TransferOnce);
        assert_eq!(all.len(), 3);
        assert!(all.iter().any(|(n, _)| n == "DAWN"));
        assert!(all.iter().any(|(n, _)| n == "LUMI"));
        assert!(all.iter().any(|(n, _)| n == "Isambard-AI"));
    }

    #[test]
    fn verdict_boundaries() {
        // exercise the classification bands directly through a fake backend
        struct Fixed(f64);
        impl Backend for Fixed {
            fn name(&self) -> String {
                "fixed".into()
            }
            fn cpu_seconds(&self, _: &BlasCall, _: u32) -> f64 {
                self.0
            }
            fn gpu_seconds(&self, _: &BlasCall, _: u32, _: Offload) -> Option<f64> {
                Some(1.0)
            }
        }
        let call = BlasCall::gemm(Precision::F32, 1, 1, 1);
        let v = |cpu: f64| advise(&Fixed(cpu), &call, 1, Offload::TransferOnce).verdict;
        assert_eq!(v(3.0), Verdict::Offload);
        assert_eq!(v(1.5), Verdict::Marginal);
        assert_eq!(v(1.0), Verdict::Borderline);
        assert_eq!(v(0.5), Verdict::StayOnCpu);
    }

    #[test]
    fn verdict_bucket_edges_land_as_documented() {
        // The documented buckets are: StayOnCpu < 0.95 ≤ Borderline ≤ 1.05 <
        // Marginal < 2.0 ≤ Offload. With gpu_seconds fixed at 1.0 the CPU
        // time *is* the speedup, so each edge can be hit exactly.
        struct Fixed(f64);
        impl Backend for Fixed {
            fn name(&self) -> String {
                "fixed".into()
            }
            fn cpu_seconds(&self, _: &BlasCall, _: u32) -> f64 {
                self.0
            }
            fn gpu_seconds(&self, _: &BlasCall, _: u32, _: Offload) -> Option<f64> {
                Some(1.0)
            }
        }
        let call = BlasCall::gemm(Precision::F32, 1, 1, 1);
        let v = |cpu: f64| advise(&Fixed(cpu), &call, 1, Offload::TransferOnce).verdict;
        // exactly 2.0 is already a clear win
        assert_eq!(v(2.0), Verdict::Offload);
        assert_eq!(v(1.9999999), Verdict::Marginal);
        // exactly 1.05 is still within the borderline band (Marginal is
        // an open interval at its lower edge)
        assert_eq!(v(1.05), Verdict::Borderline);
        assert_eq!(v(1.0500001), Verdict::Marginal);
        // exactly 0.95 has left the borderline band (which is open below)
        assert_eq!(v(0.95), Verdict::StayOnCpu);
        assert_eq!(v(0.9500001), Verdict::Borderline);
    }

    #[test]
    fn verdict_ids_are_stable_and_distinct() {
        let ids: Vec<&str> = [
            Verdict::Offload,
            Verdict::Marginal,
            Verdict::Borderline,
            Verdict::StayOnCpu,
            Verdict::NoGpu,
        ]
        .iter()
        .map(|v| v.id())
        .collect();
        assert_eq!(
            ids,
            vec!["offload", "marginal", "borderline", "stay-on-cpu", "no-gpu"]
        );
    }

    #[test]
    fn no_gpu_path_yields_no_speedup() {
        struct CpuOnly;
        impl Backend for CpuOnly {
            fn name(&self) -> String {
                "cpu-only".into()
            }
            fn cpu_seconds(&self, _: &BlasCall, _: u32) -> f64 {
                1.0
            }
            fn gpu_seconds(&self, _: &BlasCall, _: u32, _: Offload) -> Option<f64> {
                None
            }
        }
        let call = BlasCall::gemv(Precision::F64, 8, 8);
        let a = advise(&CpuOnly, &call, 4, Offload::TransferAlways);
        assert_eq!(a.verdict, Verdict::NoGpu);
        assert!(a.gpu_seconds.is_none() && a.speedup.is_none());
        assert_eq!(a.verdict.id(), "no-gpu");
    }
}
