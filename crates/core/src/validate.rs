//! Cross-library result validation (paper §III-B).
//!
//! The artifact seeds `srand` with a constant so the CPU and GPU input
//! buffers of equal dimensions always hold identical contents, then
//! compares output checksums with a 0.1 % margin for floating-point
//! rounding. We do the same: inputs come from a seeded RNG, the "CPU
//! library" result is computed with the parallel kernels and the "GPU
//! library" result with the blocked single-thread kernels (a genuinely
//! different code path — different blocking, different summation order),
//! and the checksums must agree within [`CHECKSUM_TOLERANCE`].

use crate::rng::XorShift64;
use blob_blas::scalar::Scalar;
use blob_blas::{gemm_blocked, gemm_parallel, gemv_parallel, gemv_ref};
use blob_sim::{BlasCall, Kernel, Precision};

/// The paper's checksum margin of error: 0.1 %.
pub const CHECKSUM_TOLERANCE: f64 = 1e-3;

/// Outcome of validating one call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationReport {
    /// Output checksum from the CPU-library code path.
    pub cpu_checksum: f64,
    /// Output checksum from the GPU-library code path.
    pub gpu_checksum: f64,
    /// Relative disagreement between the two.
    pub rel_err: f64,
    /// Whether the disagreement is within the 0.1 % margin.
    pub ok: bool,
}

/// Fills a buffer from a constant-seeded RNG (the artifact's `srand`-then-
/// `rand` initialisation): same seed + same length ⇒ same contents.
pub fn seeded_data<T: Scalar>(seed: u64, len: usize) -> Vec<T> {
    let mut rng = XorShift64::new(seed);
    (0..len)
        .map(|_| T::from_f64(rng.range_f64(-1.0, 1.0)))
        .collect()
}

fn validate_typed<T: Scalar>(call: &BlasCall, seed: u64) -> ValidationReport {
    let alpha = T::from_f64(call.alpha);
    let beta = T::from_f64(call.beta);
    // Buffers are sized tight to the call's dimensions, so the kernel
    // contracts hold by construction; a violation here is a harness bug and
    // is reported as a failed validation rather than a panic.
    let run = || -> Result<(Vec<T>, Vec<T>), blob_blas::ContractError> {
        match call.kernel {
            Kernel::Gemm { m, n, k } => {
                let a = seeded_data::<T>(seed, m * k);
                let b = seeded_data::<T>(seed ^ 0xB, k * n);
                // output initialised to zero throughout (paper §III-B)
                let mut c_cpu = vec![T::ZERO; m * n];
                let mut c_gpu = vec![T::ZERO; m * n];
                gemm_parallel(4, m, n, k, alpha, &a, m, &b, k, beta, &mut c_cpu, m)?;
                gemm_blocked(m, n, k, alpha, &a, m, &b, k, beta, &mut c_gpu, m)?;
                Ok((c_cpu, c_gpu))
            }
            Kernel::Gemv { m, n } => {
                let a = seeded_data::<T>(seed, m * n);
                let x = seeded_data::<T>(seed ^ 0xB, n);
                let mut y_cpu = vec![T::ZERO; m];
                let mut y_gpu = vec![T::ZERO; m];
                gemv_parallel(4, m, n, alpha, &a, m, &x, 1, beta, &mut y_cpu, 1)?;
                gemv_ref(m, n, alpha, &a, m, &x, 1, beta, &mut y_gpu, 1)?;
                Ok((y_cpu, y_gpu))
            }
        }
    };
    let Ok((cpu_out, gpu_out)) = run() else {
        return ValidationReport {
            cpu_checksum: f64::NAN,
            gpu_checksum: f64::NAN,
            rel_err: f64::INFINITY,
            ok: false,
        };
    };
    let cpu_checksum: f64 = cpu_out.iter().map(|v| v.to_f64()).sum();
    let gpu_checksum: f64 = gpu_out.iter().map(|v| v.to_f64()).sum();
    let scale = cpu_checksum.abs().max(gpu_checksum.abs()).max(1e-30);
    let rel_err = (cpu_checksum - gpu_checksum).abs() / scale;
    ValidationReport {
        cpu_checksum,
        gpu_checksum,
        rel_err,
        ok: rel_err <= CHECKSUM_TOLERANCE,
    }
}

/// Validates that the two kernel code paths agree on `call`, dispatching on
/// the call's precision.
pub fn validate_call(call: &BlasCall, seed: u64) -> ValidationReport {
    match call.precision {
        Precision::F32 => validate_typed::<f32>(call, seed),
        Precision::F64 => validate_typed::<f64>(call, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_data_is_reproducible() {
        let a: Vec<f64> = seeded_data(7, 100);
        let b: Vec<f64> = seeded_data(7, 100);
        assert_eq!(a, b);
        let c: Vec<f64> = seeded_data(8, 100);
        assert_ne!(a, c);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn gemm_paths_agree_within_margin() {
        for (m, n, k) in [(17, 23, 31), (64, 64, 64), (100, 10, 300)] {
            for prec in Precision::ALL {
                let call = match prec {
                    Precision::F32 => BlasCall::gemm(prec, m, n, k),
                    Precision::F64 => BlasCall::gemm(prec, m, n, k),
                };
                let rep = validate_call(&call, 42);
                assert!(rep.ok, "{call:?}: rel_err {}", rep.rel_err);
            }
        }
    }

    #[test]
    fn gemv_paths_agree_within_margin() {
        for (m, n) in [(33, 77), (512, 16), (16, 512)] {
            for prec in Precision::ALL {
                let call = BlasCall::gemv(prec, m, n);
                let rep = validate_call(&call, 1);
                assert!(rep.ok, "{call:?}: rel_err {}", rep.rel_err);
            }
        }
    }

    #[test]
    fn alpha_beta_variants_validate() {
        let call = BlasCall::gemm(Precision::F64, 48, 48, 48).with_scalars(4.0, 0.0);
        assert!(validate_call(&call, 3).ok);
        // beta != 0 reads the zero-initialised output: still consistent
        let call2 = BlasCall::gemm(Precision::F64, 48, 48, 48).with_scalars(1.0, 2.0);
        assert!(validate_call(&call2, 3).ok);
    }

    #[test]
    fn checksums_are_nonzero_for_nontrivial_input() {
        let rep = validate_call(&BlasCall::gemm(Precision::F64, 32, 32, 32), 9);
        assert!(rep.cpu_checksum.abs() > 0.0);
    }
}
