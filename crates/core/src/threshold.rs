//! GPU offload-threshold detection (paper §III-D).
//!
//! The *offload threshold* is the minimum problem size, for a given problem
//! type / iteration count / transfer type, from which the GPU performs
//! better than the CPU **for every larger problem size**. Its semantics:
//!
//! - If the GPU never takes over for good, there is no threshold (printed
//!   as `—` in the paper's tables). Note the paper's caveat: absence of a
//!   threshold does *not* mean the CPU wins everywhere — the GPU may win on
//!   an interior interval (Fig 4).
//! - "To account for any momentary drops in GPU performance that are due to
//!   abnormal system behaviour or noise, the previous and current problem
//!   size's performance is taken into consideration": a CPU win at a single
//!   isolated size does not reset the threshold; a CPU win at two
//!   consecutive sizes does.

/// One swept problem size: CPU time and GPU time for the same work.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// Total CPU seconds for the configured iterations.
    pub cpu_seconds: f64,
    /// Total GPU seconds (including transfers) for the same iterations.
    pub gpu_seconds: f64,
}

impl ThresholdPoint {
    /// True when the CPU strictly outperforms the GPU here.
    pub fn cpu_wins(&self) -> bool {
        self.cpu_seconds < self.gpu_seconds
    }
}

/// Finds the offload threshold over an *ascending-size* series.
///
/// Returns the index of the first point from which the GPU wins for all
/// subsequent points, treating isolated single-point CPU wins as noise
/// (two consecutive CPU wins are considered real CPU dominance). Returns
/// `None` when the GPU never durably takes over, or the series is empty.
pub fn offload_threshold_index(points: &[ThresholdPoint]) -> Option<usize> {
    if points.is_empty() {
        return None;
    }
    // A CPU win is "real" when it spans two consecutive sizes (or happens
    // at the very first size, where there is no prior context).
    let real_cpu_win =
        |i: usize| -> bool { points[i].cpu_wins() && (i == 0 || points[i - 1].cpu_wins()) };
    // The last size at which the CPU really wins; the threshold is the
    // next size — provided the GPU actually wins from there on (modulo
    // isolated dips), which it does by construction of `real_cpu_win`
    // *except* when the CPU win extends to the very end of the series.
    let last_real_cpu = (0..points.len()).rev().find(|&i| real_cpu_win(i));
    match last_real_cpu {
        // The CPU never durably wins (a win at index 0 would count as
        // real, so this branch implies the GPU wins at the first size):
        // the GPU is better from the start — LUMI's {2,2,2} case.
        None => Some(0),
        Some(i) if i + 1 < points.len() => {
            // GPU must genuinely win at the threshold itself.
            if points[i + 1].cpu_wins() {
                // A trailing isolated CPU dip right after the last real CPU
                // win: step past it (it cannot itself be "real" or it would
                // have been found instead of i).
                if i + 2 < points.len() {
                    Some(i + 2)
                } else {
                    None
                }
            } else {
                Some(i + 1)
            }
        }
        Some(_) => None, // CPU wins through the end of the sweep
    }
}

/// Convenience wrapper: builds points from parallel CPU/GPU time slices.
pub fn offload_threshold_from_times(cpu: &[f64], gpu: &[f64]) -> Option<usize> {
    assert_eq!(cpu.len(), gpu.len(), "series length mismatch");
    let pts: Vec<ThresholdPoint> = cpu
        .iter()
        .zip(gpu.iter())
        .map(|(&c, &g)| ThresholdPoint {
            cpu_seconds: c,
            gpu_seconds: g,
        })
        .collect();
    offload_threshold_index(&pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(pairs: &[(f64, f64)]) -> Vec<ThresholdPoint> {
        pairs
            .iter()
            .map(|&(c, g)| ThresholdPoint {
                cpu_seconds: c,
                gpu_seconds: g,
            })
            .collect()
    }

    #[test]
    fn clean_crossover() {
        // CPU wins for 3 sizes, then GPU forever
        let p = pts(&[(1.0, 2.0), (2.0, 3.0), (3.0, 4.0), (5.0, 4.0), (8.0, 5.0)]);
        assert_eq!(offload_threshold_index(&p), Some(3));
    }

    #[test]
    fn gpu_wins_everywhere() {
        let p = pts(&[(2.0, 1.0), (3.0, 2.0), (4.0, 2.0)]);
        assert_eq!(offload_threshold_index(&p), Some(0));
    }

    #[test]
    fn cpu_wins_everywhere() {
        let p = pts(&[(1.0, 2.0), (1.0, 2.0), (1.0, 2.0)]);
        assert_eq!(offload_threshold_index(&p), None);
    }

    #[test]
    fn empty_series() {
        assert_eq!(offload_threshold_index(&[]), None);
    }

    #[test]
    fn single_point_series() {
        assert_eq!(offload_threshold_index(&pts(&[(2.0, 1.0)])), Some(0));
        assert_eq!(offload_threshold_index(&pts(&[(1.0, 2.0)])), None);
    }

    #[test]
    fn isolated_gpu_dip_is_forgiven() {
        // GPU takes over at index 2, dips once at index 4, recovers
        let p = pts(&[
            (1.0, 2.0),
            (2.0, 3.0),
            (4.0, 3.0),
            (5.0, 4.0),
            (5.0, 6.0), // isolated dip
            (7.0, 5.0),
            (9.0, 6.0),
        ]);
        assert_eq!(offload_threshold_index(&p), Some(2));
    }

    #[test]
    fn two_consecutive_cpu_wins_reset_the_threshold() {
        let p = pts(&[
            (1.0, 2.0),
            (3.0, 2.0), // gpu ahead briefly
            (4.0, 5.0), // cpu win #1
            (5.0, 6.0), // cpu win #2 -> real
            (8.0, 6.0),
            (9.0, 7.0),
        ]);
        assert_eq!(offload_threshold_index(&p), Some(4));
    }

    #[test]
    fn trailing_cpu_dominance_means_no_threshold() {
        let p = pts(&[(2.0, 1.0), (3.0, 2.0), (3.0, 4.0), (3.0, 5.0)]);
        assert_eq!(offload_threshold_index(&p), None);
    }

    #[test]
    fn trailing_isolated_dip_is_forgiven() {
        // GPU takes over at index 2; a single CPU win at the very last
        // point is indistinguishable from noise (the paper's detector
        // needs two consecutive sizes to call a CPU win real), so the
        // threshold from the takeover stands.
        let p = pts(&[(1.0, 2.0), (2.0, 3.0), (4.0, 3.0), (4.0, 5.0)]);
        assert_eq!(offload_threshold_index(&p), Some(2));
    }

    #[test]
    fn dip_just_after_takeover_steps_past() {
        let p = pts(&[
            (1.0, 2.0), // cpu
            (2.0, 3.0), // cpu (last real win: idx 1)
            (3.0, 4.0), // isolated?? no: follows a cpu win -> real win idx 2
            (5.0, 4.0),
            (6.0, 4.0),
        ]);
        // indices 0..=2 are all real CPU wins; threshold at 3
        assert_eq!(offload_threshold_index(&p), Some(3));
    }

    #[test]
    fn from_times_wrapper() {
        let cpu = [1.0, 2.0, 5.0];
        let gpu = [2.0, 3.0, 4.0];
        assert_eq!(offload_threshold_from_times(&cpu, &gpu), Some(2));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_times_length_mismatch() {
        let _ = offload_threshold_from_times(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn interior_gpu_window_yields_no_threshold() {
        // Fig 4's caveat: GPU wins only on an interior band
        let p = pts(&[
            (1.0, 3.0),
            (2.0, 3.0),
            (5.0, 4.0), // gpu band
            (6.0, 5.0), // gpu band
            (6.0, 7.0), // cpu again
            (6.0, 8.0),
        ]);
        assert_eq!(offload_threshold_index(&p), None);
    }
}
