//! CSV emission matching the artifact's output layout: one file per
//! (routine, problem type) holding the raw per-size performance rows for
//! every device and transfer type — 28 files per full run (9 SGEMM, 9
//! DGEMM, 5 SGEMV, 5 DGEMV).

use crate::atomicio::write_atomic;
use crate::fault;
use crate::runner::Sweep;
use blob_sim::Offload;
use std::io::{self, Write};
use std::path::Path;

/// The CSV header row.
pub const HEADER: &str = "system,routine,problem,device,offload,m,n,k,iterations,seconds,gflops";

/// One sweep's data rows (no header), built infallibly in memory —
/// `String` formatting has no error path to swallow, unlike the old
/// `let _ = writeln!` into an `io::Write`.
fn rows_string(sweep: &Sweep) -> String {
    let routine = match sweep.precision {
        blob_sim::Precision::F32 => match sweep.problem.kind() {
            blob_sim::KernelKind::Gemm => "sgemm",
            blob_sim::KernelKind::Gemv => "sgemv",
        },
        blob_sim::Precision::F64 => match sweep.problem.kind() {
            blob_sim::KernelKind::Gemm => "dgemm",
            blob_sim::KernelKind::Gemv => "dgemv",
        },
    };
    let mut out = String::new();
    for r in &sweep.records {
        let (m, n, k) = r.kernel.dims();
        out.push_str(&format!(
            "{},{},{},cpu,none,{},{},{},{},{:.9e},{:.6}\n",
            sweep.system,
            routine,
            sweep.problem.id(),
            m,
            n,
            k,
            sweep.iterations,
            r.cpu_seconds,
            r.cpu_gflops
        ));
        for g in &r.gpu {
            out.push_str(&format!(
                "{},{},{},gpu,{},{},{},{},{},{:.9e},{:.6}\n",
                sweep.system,
                routine,
                sweep.problem.id(),
                g.offload.label().to_ascii_lowercase(),
                m,
                n,
                k,
                sweep.iterations,
                g.seconds,
                g.gflops
            ));
        }
    }
    out
}

/// Serialises one sweep's rows (without header) to `w`, propagating the
/// write error instead of discarding it.
pub fn write_rows<W: Write>(w: &mut W, sweep: &Sweep) -> io::Result<()> {
    w.write_all(rows_string(sweep).as_bytes())
}

/// Serialises a sweep with header to a string.
pub fn to_csv_string(sweep: &Sweep) -> String {
    let mut text = String::with_capacity(64 + 64 * sweep.records.len());
    text.push_str(HEADER);
    text.push('\n');
    text.push_str(&rows_string(sweep));
    text
}

/// The artifact's file-name convention for a sweep, e.g.
/// `sgemm_gemm_square_i8.csv`.
pub fn file_name(sweep: &Sweep) -> String {
    let prefix = match (sweep.precision, sweep.problem.kind()) {
        (blob_sim::Precision::F32, blob_sim::KernelKind::Gemm) => "sgemm",
        (blob_sim::Precision::F32, blob_sim::KernelKind::Gemv) => "sgemv",
        (blob_sim::Precision::F64, blob_sim::KernelKind::Gemm) => "dgemm",
        (blob_sim::Precision::F64, blob_sim::KernelKind::Gemv) => "dgemv",
    };
    format!(
        "{}_{}_i{}.csv",
        prefix,
        sweep.problem.id(),
        sweep.iterations
    )
}

/// Writes a sweep to `dir/<file_name>` atomically (staged into a `.tmp`
/// sibling, then renamed — see [`crate::atomicio`]); creates the
/// directory if needed. The `csv.write` fault point can inject an I/O
/// failure here, which callers must surface, not swallow.
pub fn write_to_dir(dir: &Path, sweep: &Sweep) -> io::Result<std::path::PathBuf> {
    fault::point(fault::sites::CSV_WRITE)?;
    std::fs::create_dir_all(dir)?;
    let path = dir.join(file_name(sweep));
    write_atomic(&path, to_csv_string(sweep).as_bytes())?;
    Ok(path)
}

/// A parsed CSV row (the analysis crate's input).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvRow {
    /// System name (e.g. `DAWN`).
    pub system: String,
    /// BLAS routine label (`sgemm`, `dgemv`, …).
    pub routine: String,
    /// Problem-type identifier (e.g. `gemm_square`).
    pub problem: String,
    /// `cpu` or `gpu`.
    pub device: String,
    /// `None` for CPU rows, the offload strategy for GPU rows.
    pub offload: Option<Offload>,
    /// Row dimension of the output.
    pub m: usize,
    /// Column dimension of the output.
    pub n: usize,
    /// Inner (contraction) dimension; 1 for GEMV.
    pub k: usize,
    /// Iteration count of the timed loop.
    pub iterations: u32,
    /// Total measured seconds.
    pub seconds: f64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
}

/// Error from [`parse_csv`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A data line did not have exactly the expected field count.
    FieldCount {
        /// 1-based line number in the input text.
        line: usize,
        /// Fields found on the line.
        got: usize,
    },
    /// A field's text failed to parse as its expected type.
    BadField {
        /// 1-based line number in the input text.
        line: usize,
        /// Column name from [`HEADER`].
        field: &'static str,
        /// The offending field text.
        text: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::FieldCount { line, got } => {
                write!(f, "line {line}: expected 11 fields, got {got}")
            }
            CsvError::BadField { line, field, text } => {
                write!(f, "line {line}: bad {field}: {text:?}")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text produced by [`to_csv_string`] (header optional).
pub fn parse_csv(text: &str) -> Result<Vec<CsvRow>, CsvError> {
    let mut rows = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line == HEADER {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 11 {
            return Err(CsvError::FieldCount {
                line: lineno + 1,
                got: f.len(),
            });
        }
        let err = |field: &'static str, text: &str| CsvError::BadField {
            line: lineno + 1,
            field,
            text: text.to_string(),
        };
        rows.push(CsvRow {
            system: f[0].to_string(),
            routine: f[1].to_string(),
            problem: f[2].to_string(),
            device: f[3].to_string(),
            offload: if f[4] == "none" {
                None
            } else {
                Some(f[4].parse().map_err(|_| err("offload", f[4]))?)
            },
            m: f[5].parse().map_err(|_| err("m", f[5]))?,
            n: f[6].parse().map_err(|_| err("n", f[6]))?,
            k: f[7].parse().map_err(|_| err("k", f[7]))?,
            iterations: f[8].parse().map_err(|_| err("iterations", f[8]))?,
            seconds: f[9].parse().map_err(|_| err("seconds", f[9]))?,
            gflops: f[10].parse().map_err(|_| err("gflops", f[10]))?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GemmProblem, Problem};
    use crate::runner::{run_sweep, SweepConfig};
    use blob_sim::{presets, Precision};

    fn small_sweep() -> Sweep {
        run_sweep(
            &presets::dawn(),
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::new(1, 8, 2),
        )
    }

    #[test]
    fn csv_round_trip() {
        let sweep = small_sweep();
        let text = to_csv_string(&sweep);
        let rows = parse_csv(&text).unwrap();
        // 8 sizes x (1 cpu + 3 gpu) rows
        assert_eq!(rows.len(), 8 * 4);
        let cpu_rows: Vec<_> = rows.iter().filter(|r| r.device == "cpu").collect();
        assert_eq!(cpu_rows.len(), 8);
        assert!(cpu_rows.iter().all(|r| r.offload.is_none()));
        let gpu_once: Vec<_> = rows
            .iter()
            .filter(|r| r.offload == Some(Offload::TransferOnce))
            .collect();
        assert_eq!(gpu_once.len(), 8);
        // values survive the round trip
        let first = rows.iter().find(|r| r.device == "cpu" && r.m == 1).unwrap();
        assert!((first.seconds - sweep.records[0].cpu_seconds).abs() / first.seconds < 1e-6);
        assert_eq!(first.iterations, 2);
        assert_eq!(first.routine, "sgemm");
        assert_eq!(first.system, "DAWN");
    }

    #[test]
    fn file_name_convention() {
        let sweep = small_sweep();
        assert_eq!(file_name(&sweep), "sgemm_gemm_square_i2.csv");
    }

    #[test]
    fn write_to_dir_creates_file() {
        let sweep = small_sweep();
        let dir = std::env::temp_dir().join("blob_csv_test");
        let path = write_to_dir(&dir, &sweep).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(HEADER));
        assert_eq!(parse_csv(&text).unwrap().len(), 32);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert_eq!(
            parse_csv("a,b,c").unwrap_err(),
            CsvError::FieldCount { line: 1, got: 3 }
        );
        assert_eq!(
            parse_csv("s,r,p,cpu,none,1,2,3,four,0.5,1.0").unwrap_err(),
            CsvError::BadField {
                line: 1,
                field: "iterations",
                text: "four".to_string()
            }
        );
        // header-only and empty inputs are fine
        assert_eq!(parse_csv(HEADER).unwrap().len(), 0);
        assert_eq!(parse_csv("").unwrap().len(), 0);
    }
}
