//! Property-based tests of the harness: problem-type generators, CSV
//! round-trips, and custom-problem parsing.
//!
//! Driven by `blob_core::testkit`; a failing case prints its seed for
//! replay with `testkit::run_case`.

use blob_core::csv::{parse_csv, to_csv_string};
use blob_core::custom::CustomProblem;
use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_core::testkit::{forall, Config, Gen};
use blob_sim::{presets, KernelKind, Precision};

fn any_problem(g: &mut Gen) -> Problem {
    if g.chance(0.5) {
        Problem::Gemm(*g.choose(&GemmProblem::ALL))
    } else {
        Problem::Gemv(*g.choose(&GemvProblem::ALL))
    }
}

/// Every generated size respects the [s, d] contract and its own
/// problem-type definition.
#[test]
fn problem_dims_respect_range() {
    forall(Config::default().cases(48), |g| {
        let problem = any_problem(g);
        let s = g.usize_in(1, 63);
        let extra = g.usize_in(0, 511);
        let step = g.usize_in(1, 31);
        let d = s + extra;
        for p in problem.params(s, d, step) {
            let (m, n, k) = problem.dims(p).dims();
            assert!(m >= 1 && n >= 1 && k >= 1);
            assert!(
                m <= d && n <= d && k <= d,
                "{problem:?} p={p}: {m},{n},{k} vs d={d}"
            );
            match problem.kind() {
                KernelKind::Gemm => {}
                KernelKind::Gemv => assert_eq!(k, 1),
            }
        }
    });
}

/// Params are strictly increasing and end exactly at the range cap.
#[test]
fn params_strictly_increasing() {
    forall(Config::default().cases(48), |g| {
        let problem = any_problem(g);
        let d = g.usize_in(32, 1023);
        let step = g.usize_in(1, 63);
        let ps = problem.params(1, d, step);
        if ps.is_empty() {
            // only the fixed-32 types with d < 32 may be empty
            assert!(d < 32);
            return;
        }
        assert!(ps.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ps.last().unwrap(), problem.max_param(d));
    });
}

/// CSV serialisation round-trips every numeric field of a sweep.
#[test]
fn csv_round_trip_lossless() {
    forall(Config::default().cases(48), |g| {
        let problem = any_problem(g);
        let d = g.usize_in(4, 39);
        let iters = g.usize_in(1, 63) as u32;
        let sys = match g.usize_in(0, 2) {
            0 => presets::dawn(),
            1 => presets::lumi(),
            _ => presets::isambard_ai(),
        };
        let sweep = run_sweep(
            &sys,
            problem,
            Precision::F64,
            &SweepConfig::new(1, d, iters),
        );
        let rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        assert_eq!(rows.len(), sweep.records.len() * 4);
        for r in &sweep.records {
            let (m, n, k) = r.kernel.dims();
            let row = rows
                .iter()
                .find(|x| x.device == "cpu" && (x.m, x.n, x.k) == (m, n, k))
                .expect("cpu row present");
            assert!((row.seconds - r.cpu_seconds).abs() / r.cpu_seconds < 1e-6);
            assert_eq!(row.iterations, sweep.iterations);
        }
    });
}

/// Custom-problem parsing accepts every spec its printer would write
/// and respects the range contract.
#[test]
fn custom_specs_well_behaved() {
    forall(Config::default().cases(48), |g| {
        let mf = g.usize_in(1, 19);
        let nf = g.usize_in(1, 19);
        let kdiv = g.usize_in(1, 19);
        let d = g.usize_in(64, 2047);
        let spec = format!("gemm:{mf}p,{nf}p,p/{kdiv}");
        let p = CustomProblem::parse(&spec).unwrap();
        for param in p.params(1, d, 7) {
            let (m, n, k) = p.dims(param).dims();
            assert_eq!(m, mf * param);
            assert_eq!(n, nf * param);
            assert_eq!(k, (param / kdiv).max(1));
            assert!(m <= d && n <= d && k <= d);
        }
    });
}

/// The sweep's GFLOP/s always equals paper-FLOPs x iters / seconds.
#[test]
fn gflops_accounting_consistent() {
    forall(Config::default().cases(48), |g| {
        let problem = any_problem(g);
        let d = g.usize_in(4, 31);
        let iters = g.usize_in(1, 15) as u32;
        let sys = presets::lumi();
        let sweep = run_sweep(
            &sys,
            problem,
            Precision::F32,
            &SweepConfig::new(1, d, iters),
        );
        for r in &sweep.records {
            let call = blob_sim::BlasCall {
                kernel: r.kernel,
                precision: Precision::F32,
                alpha: 1.0,
                beta: 0.0,
            };
            let expect = iters as f64 * call.paper_flops() / r.cpu_seconds / 1e9;
            assert!((r.cpu_gflops - expect).abs() / expect < 1e-9);
            for gpu in &r.gpu {
                let eg = iters as f64 * call.paper_flops() / gpu.seconds / 1e9;
                assert!((gpu.gflops - eg).abs() / eg < 1e-9);
            }
        }
    });
}
