//! Property-based tests of the harness: problem-type generators, CSV
//! round-trips, and custom-problem parsing.

use blob_core::csv::{parse_csv, to_csv_string};
use blob_core::custom::CustomProblem;
use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_sim::{presets, KernelKind, Precision};
use proptest::prelude::*;

fn any_problem() -> impl Strategy<Value = Problem> {
    let gemm = proptest::sample::select(GemmProblem::ALL.to_vec()).prop_map(Problem::Gemm);
    let gemv = proptest::sample::select(GemvProblem::ALL.to_vec()).prop_map(Problem::Gemv);
    prop_oneof![gemm, gemv]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated size respects the [s, d] contract and its own
    /// problem-type definition.
    #[test]
    fn problem_dims_respect_range(
        problem in any_problem(),
        s in 1usize..64,
        extra in 0usize..512,
        step in 1usize..32,
    ) {
        let d = s + extra;
        for p in problem.params(s, d, step) {
            let (m, n, k) = problem.dims(p).dims();
            prop_assert!(m >= 1 && n >= 1 && k >= 1);
            prop_assert!(m <= d && n <= d && k <= d, "{problem:?} p={p}: {m},{n},{k} vs d={d}");
            match problem.kind() {
                KernelKind::Gemm => {}
                KernelKind::Gemv => prop_assert_eq!(k, 1),
            }
        }
    }

    /// Params are strictly increasing and end exactly at the range cap.
    #[test]
    fn params_strictly_increasing(
        problem in any_problem(),
        d in 32usize..1024,
        step in 1usize..64,
    ) {
        let ps = problem.params(1, d, step);
        if ps.is_empty() {
            // only the fixed-32 types with d < 32 may be empty
            prop_assert!(d < 32);
            return Ok(());
        }
        prop_assert!(ps.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(*ps.last().unwrap(), problem.max_param(d));
    }

    /// CSV serialisation round-trips every numeric field of a sweep.
    #[test]
    fn csv_round_trip_lossless(
        problem in any_problem(),
        d in 4usize..40,
        iters in 1u32..64,
        sys_i in 0usize..3,
    ) {
        let sys = match sys_i {
            0 => presets::dawn(),
            1 => presets::lumi(),
            _ => presets::isambard_ai(),
        };
        let sweep = run_sweep(&sys, problem, Precision::F64, &SweepConfig::new(1, d, iters));
        let rows = parse_csv(&to_csv_string(&sweep)).unwrap();
        prop_assert_eq!(rows.len(), sweep.records.len() * 4);
        for r in &sweep.records {
            let (m, n, k) = r.kernel.dims();
            let row = rows
                .iter()
                .find(|x| x.device == "cpu" && (x.m, x.n, x.k) == (m, n, k))
                .expect("cpu row present");
            prop_assert!((row.seconds - r.cpu_seconds).abs() / r.cpu_seconds < 1e-6);
            prop_assert_eq!(row.iterations, sweep.iterations);
        }
    }

    /// Custom-problem parsing accepts every spec its printer would write
    /// and respects the range contract.
    #[test]
    fn custom_specs_well_behaved(
        mf in 1usize..20,
        nf in 1usize..20,
        kdiv in 1usize..20,
        d in 64usize..2048,
    ) {
        let spec = format!("gemm:{mf}p,{nf}p,p/{kdiv}");
        let p = CustomProblem::parse(&spec).unwrap();
        for param in p.params(1, d, 7) {
            let (m, n, k) = p.dims(param).dims();
            prop_assert_eq!(m, mf * param);
            prop_assert_eq!(n, nf * param);
            prop_assert_eq!(k, (param / kdiv).max(1));
            prop_assert!(m <= d && n <= d && k <= d);
        }
    }

    /// The sweep's GFLOP/s always equals paper-FLOPs x iters / seconds.
    #[test]
    fn gflops_accounting_consistent(
        problem in any_problem(),
        d in 4usize..32,
        iters in 1u32..16,
    ) {
        let sys = presets::lumi();
        let sweep = run_sweep(&sys, problem, Precision::F32, &SweepConfig::new(1, d, iters));
        for r in &sweep.records {
            let call = blob_sim::BlasCall {
                kernel: r.kernel,
                precision: Precision::F32,
                alpha: 1.0,
                beta: 0.0,
            };
            let expect = iters as f64 * call.paper_flops() / r.cpu_seconds / 1e9;
            prop_assert!((r.cpu_gflops - expect).abs() / expect < 1e-9);
            for g in &r.gpu {
                let eg = iters as f64 * call.paper_flops() / g.seconds / 1e9;
                prop_assert!((g.gflops - eg).abs() / eg < 1e-9);
            }
        }
    }
}
