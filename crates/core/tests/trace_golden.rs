//! Golden test for the trace plane: a small traced sweep must emit a
//! valid chrome://tracing JSON document containing the per-size runner
//! spans, the GEMM pack/compute micro-phase spans (via the blas
//! tracehook), and — when the measurement fans out over the thread pool —
//! the pool dispatch/job/wait spans, all correctly parented.

use blob_core::backend::HostCpu;
use blob_core::problem::{GemmProblem, Problem};
use blob_core::runner::{run_sweep, run_sweep_pooled, SweepConfig};
use blob_core::trace;
use blob_core::wire::Json;
use blob_sim::{presets, Precision};
use std::sync::{Arc, PoisonError};

/// One traced 2-size sweep, serial on the host CPU (pack/compute spans on
/// the caller thread) followed by a pooled analytic sweep (pool spans on
/// the workers), returning everything the plane recorded.
fn traced_spans() -> Vec<trace::Span> {
    let cfg = SweepConfig::builder()
        .dims(32, 64)
        .iterations(1)
        .step(32)
        .build()
        .expect("valid 2-size config");
    let problem = Problem::Gemm(GemmProblem::Square);

    trace::enable();
    // Serial host sweep: every GEMM runs inline on this thread, so the
    // pack/compute spans nest under the per-size runner spans.
    let host = HostCpu::with_threads(1);
    let sweep = run_sweep(&host, problem, Precision::F32, &cfg);
    assert_eq!(sweep.records.len(), 2, "dims 32..=64 step 32 is 2 sizes");
    // Pooled analytic sweep: the per-size measurements go through the
    // thread pool, so dispatch/job/wait spans appear.
    let pool = blob_core::runner::ThreadPool::new(2);
    let pooled = run_sweep_pooled(
        Arc::new(presets::lumi()),
        problem,
        Precision::F32,
        &cfg,
        &pool,
    );
    assert_eq!(pooled.records.len(), 2);
    let spans = trace::take();
    let dropped = trace::dropped();
    trace::disable();
    assert_eq!(dropped, 0, "a 2-size sweep must fit the sink");
    spans
}

#[test]
fn traced_sweep_emits_valid_nested_chrome_trace_json() {
    let _guard = trace::TRACE_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let spans = traced_spans();

    // Every layer contributed spans.
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert!(
        count(trace::names::SWEEP_SIZE) >= 4,
        "2 sizes x 2 sweeps: {spans:?}"
    );
    assert!(count("gemm.pack_a") > 0, "pack spans missing");
    assert!(count("gemm.pack_b") > 0, "pack spans missing");
    assert!(count("gemm.compute") > 0, "compute spans missing");
    assert!(count("pool.dispatch") > 0, "pool dispatch spans missing");
    assert!(count("pool.job") > 0, "pool job spans missing");
    assert!(count("pool.wait") > 0, "pool wait spans missing");

    // Parenting: every non-root parent id exists, and every pack/compute
    // span sits inside an enclosing span on the same thread.
    let find = |id: u64| spans.iter().find(|s| s.id == id);
    for s in &spans {
        if s.parent != 0 {
            let parent = find(s.parent).unwrap_or_else(|| panic!("dangling parent in {s:?}"));
            assert_eq!(parent.tid, s.tid, "parent on another thread: {s:?}");
            assert!(parent.start_ns <= s.start_ns, "child starts early: {s:?}");
        }
        if s.name.starts_with("gemm.") {
            assert_ne!(s.parent, 0, "pack/compute span has no parent: {s:?}");
        }
    }
    // The serial host sweep nests its pack spans under a runner size span.
    let serial_pack_under_size = spans
        .iter()
        .filter(|s| s.name == "gemm.pack_a")
        .any(|s| find(s.parent).is_some_and(|p| p.name == trace::names::SWEEP_SIZE));
    assert!(serial_pack_under_size, "pack not nested under sweep.size");

    // The export is one valid JSON document in chrome://tracing shape.
    let doc = trace::chrome_trace_json(&spans);
    let parsed = Json::parse(&doc).expect("chrome trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .to_vec();
    assert_eq!(events.len(), spans.len());
    for ev in &events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        assert!(ev.get("cat").and_then(Json::as_str).is_some());
        assert!(ev.get("ts").and_then(Json::as_f64).is_some());
        assert!(ev.get("dur").and_then(Json::as_f64).is_some());
        assert!(ev.get("tid").and_then(Json::as_f64).is_some());
    }
    // Annotations survive the export: a size span carries its parameter.
    let has_param_arg = events.iter().any(|ev| {
        ev.get("name").and_then(Json::as_str) == Some(trace::names::SWEEP_SIZE)
            && ev
                .get("args")
                .and_then(|a| a.get("param"))
                .and_then(Json::as_f64)
                .is_some()
    });
    assert!(has_param_arg, "size span lost its param annotation");
}
