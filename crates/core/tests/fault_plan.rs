//! Behavioral tests for the `blob_core::fault` plane: trigger budgets,
//! seed determinism, delay timing, panic payloads, and environment-driven
//! installation. Parse-level grammar tests live next to the parser; these
//! exercise an *installed* plan end to end.
//!
//! Plans are process-global, so every test takes `fault::CHAOS_LOCK` and
//! clears any leftover plan on entry.

use blob_core::fault::{self, Plan};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks the chaos plane and starts from a clean (no-plan) state.
fn chaos_guard() -> MutexGuard<'static, ()> {
    let guard = fault::CHAOS_LOCK
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    fault::clear();
    guard
}

fn install(spec: &str) {
    fault::install(&Plan::parse(spec).expect("valid plan spec"));
}

#[test]
fn trigger_budget_is_exhausted_then_the_point_recovers() {
    let _g = chaos_guard();
    install("runner.size:error@1x3");
    let failures: usize = (0..10)
        .filter(|_| fault::point(fault::sites::RUNNER_SIZE).is_err())
        .count();
    assert_eq!(failures, 3, "exactly the x3 budget must fire");
    assert_eq!(fault::injected_total(), 3);
    // budget spent: the point is permanently healthy again
    for _ in 0..5 {
        assert!(fault::point(fault::sites::RUNNER_SIZE).is_ok());
    }
    fault::clear();
}

#[test]
fn same_seed_replays_the_same_decision_sequence() {
    let _g = chaos_guard();
    let spec = "seed=42;runner.size:error@0.37";
    let draw = || -> Vec<bool> {
        install(spec);
        (0..200)
            .map(|_| fault::point(fault::sites::RUNNER_SIZE).is_err())
            .collect()
    };
    let first = draw();
    let second = draw();
    assert_eq!(first, second, "re-installing the plan must replay it");
    assert!(first.iter().any(|&b| b), "p=0.37 over 200 draws must fire");
    assert!(first.iter().any(|&b| !b), "and must not fire every time");

    // a different seed gives a different stream (overwhelmingly likely
    // over 200 draws)
    install("seed=43;runner.size:error@0.37");
    let other: Vec<bool> = (0..200)
        .map(|_| fault::point(fault::sites::RUNNER_SIZE).is_err())
        .collect();
    assert_ne!(first, other, "seed must select the stream");
    fault::clear();
}

#[test]
fn rules_draw_from_independent_streams() {
    let _g = chaos_guard();
    // Two sites under one plan: exercising one site must not perturb the
    // other's decision sequence.
    let solo = {
        install("seed=9;csv.write:error@0.5");
        (0..50)
            .map(|_| fault::point(fault::sites::CSV_WRITE).is_err())
            .collect::<Vec<_>>()
    };
    install("seed=9;csv.write:error@0.5;runner.size:error@0.5");
    let interleaved: Vec<bool> = (0..50)
        .map(|_| {
            let _ = fault::point(fault::sites::RUNNER_SIZE);
            fault::point(fault::sites::CSV_WRITE).is_err()
        })
        .collect();
    assert_eq!(solo, interleaved);
    fault::clear();
}

#[test]
fn delay_action_actually_sleeps_then_succeeds() {
    let _g = chaos_guard();
    install("checkpoint.write:delay(40ms)@1x1");
    let t0 = Instant::now();
    let first = fault::point(fault::sites::CHECKPOINT_WRITE);
    let delayed = t0.elapsed();
    assert!(first.is_ok(), "delay is not a failure");
    assert!(
        delayed >= Duration::from_millis(40),
        "slept only {delayed:?}"
    );
    let t1 = Instant::now();
    assert!(fault::point(fault::sites::CHECKPOINT_WRITE).is_ok());
    assert!(
        t1.elapsed() < Duration::from_millis(40),
        "the x1 budget must not delay the second call"
    );
    fault::clear();
}

#[test]
fn panic_action_names_the_site_in_its_payload() {
    let _g = chaos_guard();
    install("serve.handle:panic@1x1");
    let err = catch_unwind(AssertUnwindSafe(|| {
        fault::point(fault::sites::SERVE_HANDLE)
    }))
    .expect_err("the armed point must unwind");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string payload>".to_string());
    assert!(msg.contains("serve.handle"), "payload was {msg:?}");
    // the panic must not have wedged the plan lock
    assert!(fault::point(fault::sites::SERVE_HANDLE).is_ok());
    fault::clear();
}

#[test]
fn error_payload_names_the_site_too() {
    let _g = chaos_guard();
    install("serve.cache:error@1x1");
    let err = fault::point(fault::sites::SERVE_CACHE).expect_err("armed");
    assert!(err.to_string().contains("serve.cache"), "{err}");
    fault::clear();
}

#[test]
fn stats_report_per_site_injection_counts() {
    let _g = chaos_guard();
    install("csv.write:error@1x2;runner.size:error@1x1");
    for _ in 0..4 {
        let _ = fault::point(fault::sites::CSV_WRITE);
        let _ = fault::point(fault::sites::RUNNER_SIZE);
    }
    let stats = fault::stats();
    let count = |site: &str| {
        stats
            .iter()
            .find(|(s, _)| s == site)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    };
    assert_eq!(count("csv.write"), 2);
    assert_eq!(count("runner.size"), 1);
    assert_eq!(fault::injected_total(), 3);
    fault::clear();
    assert!(fault::stats().is_empty(), "clear drops the stats");
}

#[test]
fn install_from_env_reads_and_validates_the_variable() {
    let _g = chaos_guard();
    std::env::remove_var("GPU_BLOB_FAULTS");
    assert_eq!(fault::install_from_env(), Ok(false));
    assert!(!fault::active());

    std::env::set_var("GPU_BLOB_FAULTS", "runner.size:error@1x1");
    assert_eq!(fault::install_from_env(), Ok(true));
    assert!(fault::active());
    assert!(fault::point(fault::sites::RUNNER_SIZE).is_err());

    std::env::set_var("GPU_BLOB_FAULTS", "no.such.site:error@1");
    assert!(fault::install_from_env().is_err(), "typos must not pass");

    std::env::remove_var("GPU_BLOB_FAULTS");
    fault::clear();
}

#[test]
fn every_catalogued_site_is_injectable() {
    let _g = chaos_guard();
    // `pool.worker` resolves through the blob-blas hook rather than
    // `fault::point`, so it is exercised by the pool tests instead.
    for site in fault::sites::ALL {
        if site == fault::sites::POOL_WORKER {
            continue;
        }
        install(&format!("{site}:error@1x1"));
        let hit = fault::sites::ALL
            .iter()
            .find(|s| **s == site)
            .copied()
            .expect("site is in the catalogue");
        assert!(fault::point(hit).is_err(), "site {site} never fired");
    }
    fault::clear();
}
