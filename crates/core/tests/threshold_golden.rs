//! Golden tests for the offload-threshold detector on synthetic crossover
//! curves with known answers: clean monotone crossovers, curves with
//! injected deterministic noise, and curves that never cross.
//!
//! The curves mimic the paper's timing structure: CPU time grows with the
//! work (`n³` for GEMM-shaped sweeps) while GPU time is a fixed launch
//! overhead plus a much cheaper work term, so the GPU loses at small sizes
//! and wins past a computable crossover.

use blob_core::threshold::{offload_threshold_from_times, offload_threshold_index, ThresholdPoint};

/// CPU model: pure work term.
fn cpu_time(n: usize) -> f64 {
    let w = (n * n * n) as f64;
    w * 1e-9
}

/// GPU model: fixed offload overhead + cheap work term. With `overhead`
/// seconds of launch/transfer cost the crossover sits where
/// `n³·1e-9 = overhead + n³·1e-10`.
fn gpu_time(n: usize, overhead: f64) -> f64 {
    let w = (n * n * n) as f64;
    overhead + w * 1e-10
}

/// Deterministic "noise" factor in [1-amp, 1+amp] from a hash of (seed, i).
fn noise(seed: u64, i: usize, amp: f64) -> f64 {
    let mut h = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + amp * (2.0 * u - 1.0)
}

fn sizes() -> Vec<usize> {
    (1..=128).collect()
}

#[test]
fn golden_monotone_crossover() {
    // overhead 1e-3 s: crossover where n³(1e-9 - 1e-10) = 1e-3,
    // i.e. n = (1e-3 / 9e-10)^(1/3) ≈ 103.6 → first GPU win at n = 104.
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let gpu: Vec<f64> = ns.iter().map(|&n| gpu_time(n, 1e-3)).collect();
    let idx = offload_threshold_from_times(&cpu, &gpu);
    assert_eq!(idx, Some(103)); // index 103 ⇒ n = 104
                                // golden invariant: GPU wins at and beyond the threshold
    let t = idx.unwrap();
    assert!(cpu[t] >= gpu[t]);
    assert!((t..ns.len()).all(|i| cpu[i] >= gpu[i]));
    assert!(cpu[t - 1] < gpu[t - 1], "CPU must still win just before");
}

#[test]
fn golden_monotone_crossover_small_overhead() {
    // overhead 1e-6 s → crossover ≈ (1e-6 / 9e-10)^(1/3) ≈ 10.4 → n = 11.
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let gpu: Vec<f64> = ns.iter().map(|&n| gpu_time(n, 1e-6)).collect();
    assert_eq!(offload_threshold_from_times(&cpu, &gpu), Some(10)); // n = 11
}

#[test]
fn golden_gpu_wins_from_first_size() {
    // Zero overhead: the GPU wins even at n = 1 (LUMI's {2,2,2} behaviour).
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let gpu: Vec<f64> = ns.iter().map(|&n| gpu_time(n, 0.0)).collect();
    assert_eq!(offload_threshold_from_times(&cpu, &gpu), Some(0));
}

#[test]
fn golden_noisy_crossover_with_isolated_dips() {
    // ±4 % multiplicative noise on the GPU curve cannot move a detector
    // that requires two consecutive CPU wins: around the clean crossover
    // (n ≈ 104) the margin changes by < 10 %, so noise produces at most
    // isolated flips far from the true threshold and the detected index
    // must stay within the noise band of the clean one.
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let gpu: Vec<f64> = ns
        .iter()
        .enumerate()
        .map(|(i, &n)| gpu_time(n, 1e-3) * noise(0xD1CE, i, 0.04))
        .collect();
    let idx = offload_threshold_from_times(&cpu, &gpu).expect("crossover exists");
    let clean = 103;
    assert!(
        idx.abs_diff(clean) <= 3,
        "noisy threshold {idx} strays too far from clean {clean}"
    );
    // from the detected threshold on, any CPU win is isolated (never two
    // consecutive) — the detector's definition of durable GPU dominance
    for i in (idx + 1)..ns.len() {
        assert!(
            !(cpu[i] < gpu[i] && cpu[i - 1] < gpu[i - 1]),
            "two consecutive CPU wins at {i} past threshold {idx}"
        );
    }
}

#[test]
fn golden_single_injected_dip_is_forgiven() {
    // Clean curve, then one hand-placed GPU glitch well past the
    // crossover: the detector must keep the clean threshold.
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let mut gpu: Vec<f64> = ns.iter().map(|&n| gpu_time(n, 1e-3)).collect();
    gpu[115] = cpu[115] * 3.0; // momentary system noise at n = 116
    assert_eq!(offload_threshold_from_times(&cpu, &gpu), Some(103));
}

#[test]
fn golden_two_consecutive_dips_reset() {
    // The same glitch across two consecutive sizes is real CPU dominance;
    // the threshold moves past it.
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let mut gpu: Vec<f64> = ns.iter().map(|&n| gpu_time(n, 1e-3)).collect();
    gpu[115] = cpu[115] * 3.0;
    gpu[116] = cpu[116] * 3.0;
    assert_eq!(offload_threshold_from_times(&cpu, &gpu), Some(117));
}

#[test]
fn golden_never_crosses() {
    // GPU work term *more* expensive than the CPU's: the curves never
    // cross and there is no threshold at any overhead.
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    for overhead in [0.0, 1e-6, 1e-3] {
        let gpu: Vec<f64> = ns
            .iter()
            .map(|&n| overhead + (n * n * n) as f64 * 2e-9)
            .collect();
        assert_eq!(
            offload_threshold_from_times(&cpu, &gpu),
            None,
            "overhead {overhead}"
        );
    }
}

#[test]
fn golden_overhead_monotonicity() {
    // Physical sanity: a larger offload overhead can only move the
    // threshold to larger sizes (or destroy it).
    let ns = sizes();
    let cpu: Vec<f64> = ns.iter().map(|&n| cpu_time(n)).collect();
    let mut last = Some(0);
    for overhead in [0.0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3] {
        let gpu: Vec<f64> = ns.iter().map(|&n| gpu_time(n, overhead)).collect();
        let idx = offload_threshold_from_times(&cpu, &gpu);
        match (last, idx) {
            (Some(prev), Some(cur)) => assert!(cur >= prev, "{overhead}: {cur} < {prev}"),
            (None, Some(_)) => panic!("threshold reappeared as overhead grew"),
            _ => {}
        }
        last = idx;
    }
}

#[test]
fn golden_interior_window_only() {
    // GEMV-shaped curve: bandwidth-bound GPU wins only on an interior band
    // (paper Fig 4) — no durable takeover, no threshold.
    let pts: Vec<ThresholdPoint> = (1..=64)
        .map(|n| {
            let w = (n * n) as f64;
            let cpu = w * 1e-6;
            // GPU: overhead + work, plus a late-size penalty that hands the
            // win back to the CPU for the rest of the sweep
            let penalty = if n > 48 { 10.0 } else { 1.0 };
            let gpu = (2e-4 + w * 2e-7) * penalty;
            ThresholdPoint {
                cpu_seconds: cpu,
                gpu_seconds: gpu,
            }
        })
        .collect();
    // sanity: the GPU does win somewhere in the middle…
    assert!(pts.iter().any(|p| !p.cpu_wins()));
    // …but never durably to the end
    assert_eq!(offload_threshold_index(&pts), None);
}
