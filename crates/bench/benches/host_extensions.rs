//! Criterion benchmarks of the extension kernels: batched GEMM vs a loop
//! of plain GEMMs, CSR SpMV serial vs parallel and vs dense GEMV, BF16 vs
//! f32, and the Level-2/3 additions (GER, SYRK, TRSV).
//!
//! ```text
//! cargo bench -p blob-bench --bench host_extensions
//! ```

use blob_blas::{
    gemm_batched, gemm_batched_parallel, gemm_blocked, gemv_ref, ger, syrk, trsv,
    BatchedGemmDesc, Bf16, CsrMatrix, UpLo,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn bench_batched_vs_looped(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_gemm");
    let desc = BatchedGemmDesc::tight(32, 32, 32);
    let batch = 64;
    let a = filled(desc.stride_a * batch, 1);
    let b = filled(desc.stride_b * batch, 2);
    let mut out = vec![0.0f64; desc.stride_c * batch];
    group.bench_function("looped_64x32cubed", |bench| {
        bench.iter(|| {
            for i in 0..batch {
                gemm_blocked(
                    32, 32, 32, 1.0,
                    &a[i * desc.stride_a..], 32,
                    &b[i * desc.stride_b..], 32,
                    0.0,
                    &mut out[i * desc.stride_c..i * desc.stride_c + 1024], 32,
                );
            }
            black_box(&out);
        })
    });
    group.bench_function("batched_64x32cubed", |bench| {
        bench.iter(|| {
            gemm_batched(&desc, batch, 1.0, &a, &b, 0.0, &mut out);
            black_box(&out);
        })
    });
    group.bench_function("batched_parallel_64x32cubed", |bench| {
        bench.iter(|| {
            gemm_batched_parallel(4, &desc, batch, 1.0, &a, &b, 0.0, &mut out);
            black_box(&out);
        })
    });
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    let n = 20_000;
    let mut trip = Vec::new();
    for i in 0..n {
        for d in -3i64..=3 {
            let j = i as i64 + d * 17;
            if (0..n as i64).contains(&j) {
                trip.push((i, j as usize, (i % 7) as f64 - 3.0));
            }
        }
    }
    let m = CsrMatrix::from_triplets(n, n, trip);
    let x = filled(n, 3);
    let mut y = vec![0.0f64; n];
    group.bench_function("csr_serial", |bench| {
        bench.iter(|| {
            m.spmv(1.0, &x, 0.0, &mut y);
            black_box(&y);
        })
    });
    group.bench_function("csr_parallel", |bench| {
        bench.iter(|| {
            m.spmv_parallel(4, 1.0, &x, 0.0, &mut y);
            black_box(&y);
        })
    });
    // dense GEMV on the same logical matrix at a smaller size for contrast
    let nd = 2000;
    let dense = filled(nd * nd, 4);
    let xd = filled(nd, 5);
    let mut yd = vec![0.0f64; nd];
    group.bench_function("dense_gemv_2000", |bench| {
        bench.iter(|| {
            gemv_ref(nd, nd, 1.0, &dense, nd, &xd, 1, 0.0, &mut yd, 1);
            black_box(&yd);
        })
    });
    group.finish();
}

fn bench_bf16(c: &mut Criterion) {
    let mut group = c.benchmark_group("bf16_gemm");
    let s = 96;
    let a32: Vec<f32> = filled(s * s, 6).iter().map(|&v| v as f32).collect();
    let b32: Vec<f32> = filled(s * s, 7).iter().map(|&v| v as f32).collect();
    let ab: Vec<Bf16> = a32.iter().map(|&v| Bf16::from_f32(v)).collect();
    let bb: Vec<Bf16> = b32.iter().map(|&v| Bf16::from_f32(v)).collect();
    let mut c32 = vec![0.0f32; s * s];
    let mut cb = vec![Bf16::ZERO; s * s];
    group.bench_function("f32_96", |bench| {
        bench.iter(|| {
            gemm_blocked(s, s, s, 1.0f32, &a32, s, &b32, s, 0.0, &mut c32, s);
            black_box(&c32);
        })
    });
    group.bench_function("bf16_96_software", |bench| {
        bench.iter(|| {
            gemm_blocked(s, s, s, Bf16::ONE, &ab, s, &bb, s, Bf16::ZERO, &mut cb, s);
            black_box(&cb);
        })
    });
    group.finish();
}

fn bench_level23(c: &mut Criterion) {
    let mut group = c.benchmark_group("level23");
    let n = 512;
    let x = filled(n, 8);
    let y = filled(n, 9);
    let mut a = filled(n * n, 10);
    group.bench_function("ger_512", |bench| {
        bench.iter(|| {
            ger(n, n, 1.0, &x, 1, &y, 1, &mut a, n);
            black_box(&a);
        })
    });
    let k = 64;
    let asrc = filled(n * k, 11);
    let mut cm = vec![0.0f64; n * n];
    group.bench_function("syrk_512x64", |bench| {
        bench.iter(|| {
            syrk(UpLo::Lower, n, k, 1.0, &asrc, n, 0.0, &mut cm, n);
            black_box(&cm);
        })
    });
    // well-conditioned lower triangle
    let mut tl = filled(n * n, 12);
    for i in 0..n {
        tl[i + i * n] = 4.0 + (i % 7) as f64;
    }
    let b = filled(n, 13);
    group.bench_function("trsv_512", |bench| {
        bench.iter(|| {
            let mut xs = b.clone();
            trsv(UpLo::Lower, n, &tl, n, &mut xs, 1);
            black_box(&xs);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_batched_vs_looped, bench_spmv, bench_bf16, bench_level23
}
criterion_main!(benches);
