//! Microbenchmarks of the extension kernels: batched GEMM vs a loop of
//! plain GEMMs, CSR SpMV serial vs parallel and vs dense GEMV, BF16 vs
//! f32, and the Level-2/3 additions (GER, SYRK, TRSV).
//!
//! ```text
//! cargo bench -p blob-bench --bench host_extensions
//! ```

use blob_bench::microbench::{black_box, Bench};
use blob_blas::{
    gemm_batched, gemm_batched_parallel, gemm_blocked, gemv_ref, ger, syrk, trsv, BatchedGemmDesc,
    Bf16, CsrMatrix, UpLo,
};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn bench_batched_vs_looped(bench: &mut Bench) {
    let mut group = bench.group("batched_gemm");
    let desc = BatchedGemmDesc::tight(32, 32, 32);
    let batch = 64;
    let a = filled(desc.stride_a * batch, 1);
    let b = filled(desc.stride_b * batch, 2);
    let mut out = vec![0.0f64; desc.stride_c * batch];
    group.bench("looped_64x32cubed", || {
        for i in 0..batch {
            gemm_blocked(
                32,
                32,
                32,
                1.0,
                &a[i * desc.stride_a..],
                32,
                &b[i * desc.stride_b..],
                32,
                0.0,
                &mut out[i * desc.stride_c..i * desc.stride_c + 1024],
                32,
            )
            .unwrap();
        }
        black_box(&out);
    });
    group.bench("batched_64x32cubed", || {
        gemm_batched(&desc, batch, 1.0, &a, &b, 0.0, &mut out).unwrap();
        black_box(&out);
    });
    group.bench("batched_parallel_64x32cubed", || {
        gemm_batched_parallel(4, &desc, batch, 1.0, &a, &b, 0.0, &mut out).unwrap();
        black_box(&out);
    });
}

fn bench_spmv(bench: &mut Bench) {
    let mut group = bench.group("spmv");
    let n = 20_000;
    let mut trip = Vec::new();
    for i in 0..n {
        for d in -3i64..=3 {
            let j = i as i64 + d * 17;
            if (0..n as i64).contains(&j) {
                trip.push((i, j as usize, (i % 7) as f64 - 3.0));
            }
        }
    }
    let m = CsrMatrix::from_triplets(n, n, trip);
    let x = filled(n, 3);
    let mut y = vec![0.0f64; n];
    group.bench("csr_serial", || {
        m.spmv(1.0, &x, 0.0, &mut y);
        black_box(&y);
    });
    group.bench("csr_parallel", || {
        m.spmv_parallel(4, 1.0, &x, 0.0, &mut y);
        black_box(&y);
    });
    // dense GEMV on the same logical matrix at a smaller size for contrast
    let nd = 2000;
    let dense = filled(nd * nd, 4);
    let xd = filled(nd, 5);
    let mut yd = vec![0.0f64; nd];
    group.bench("dense_gemv_2000", || {
        gemv_ref(nd, nd, 1.0, &dense, nd, &xd, 1, 0.0, &mut yd, 1).unwrap();
        black_box(&yd);
    });
}

fn bench_bf16(bench: &mut Bench) {
    let mut group = bench.group("bf16_gemm");
    let s = 96;
    let a32: Vec<f32> = filled(s * s, 6).iter().map(|&v| v as f32).collect();
    let b32: Vec<f32> = filled(s * s, 7).iter().map(|&v| v as f32).collect();
    let ab: Vec<Bf16> = a32.iter().map(|&v| Bf16::from_f32(v)).collect();
    let bb: Vec<Bf16> = b32.iter().map(|&v| Bf16::from_f32(v)).collect();
    let mut c32 = vec![0.0f32; s * s];
    let mut cb = vec![Bf16::ZERO; s * s];
    group.bench("f32_96", || {
        gemm_blocked(s, s, s, 1.0f32, &a32, s, &b32, s, 0.0, &mut c32, s).unwrap();
        black_box(&c32);
    });
    group.bench("bf16_96_software", || {
        gemm_blocked(s, s, s, Bf16::ONE, &ab, s, &bb, s, Bf16::ZERO, &mut cb, s).unwrap();
        black_box(&cb);
    });
}

fn bench_level23(bench: &mut Bench) {
    let mut group = bench.group("level23");
    let n = 512;
    let x = filled(n, 8);
    let y = filled(n, 9);
    let mut a = filled(n * n, 10);
    group.bench("ger_512", || {
        ger(n, n, 1.0, &x, 1, &y, 1, &mut a, n).unwrap();
        black_box(&a);
    });
    let k = 64;
    let asrc = filled(n * k, 11);
    let mut cm = vec![0.0f64; n * n];
    group.bench("syrk_512x64", || {
        syrk(UpLo::Lower, n, k, 1.0, &asrc, n, 0.0, &mut cm, n).unwrap();
        black_box(&cm);
    });
    // well-conditioned lower triangle
    let mut tl = filled(n * n, 12);
    for i in 0..n {
        tl[i + i * n] = 4.0 + (i % 7) as f64;
    }
    let b = filled(n, 13);
    group.bench("trsv_512", || {
        let mut xs = b.clone();
        trsv(UpLo::Lower, n, &tl, n, &mut xs, 1).unwrap();
        black_box(&xs);
    });
}

fn main() {
    let mut b = Bench::from_args("host_extensions");
    bench_batched_vs_looped(&mut b);
    bench_spmv(&mut b);
    bench_bf16(&mut b);
    bench_level23(&mut b);
}
