//! Blocking-parameter ablation for the Goto GEMM — the design-choice study
//! DESIGN.md calls out: how much do the cache-block sizes (MC, KC, NC)
//! matter, and are the shipped defaults sensible on this host?
//!
//! ```text
//! cargo bench -p blob-bench --bench gemm_blocking
//! ```

use blob_bench::microbench::{black_box, Bench};
use blob_blas::{gemm_blocked_with, BlockConfig};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn main() {
    let mut bench = Bench::from_args("gemm_blocking");
    let mut group = bench.group("gemm_blocking");
    let s = 384;
    let a = filled(s * s, 1);
    let b = filled(s * s, 2);
    let mut out = vec![0.0f64; s * s];
    group.throughput_elements((2 * s * s * s) as u64);
    let configs = [
        ("default_128_256_2048", BlockConfig::default()),
        ("tiny_32_64_512", BlockConfig::new(32, 64, 512)),
        ("tall_256_128_2048", BlockConfig::new(256, 128, 2048)),
        ("deep_64_512_2048", BlockConfig::new(64, 512, 2048)),
        ("huge_512_512_4096", BlockConfig::new(512, 512, 4096)),
        ("degenerate_8_8_8", BlockConfig::new(8, 8, 8)),
    ];
    for (name, cfg) in configs {
        group.bench(name, || {
            gemm_blocked_with(cfg, s, s, s, 1.0, &a, s, &b, s, 0.0, &mut out, s).unwrap();
            black_box(&out);
        });
    }
}
