//! Criterion benchmarks of the simulator and harness themselves: how fast
//! a full paper-scale sweep (4096 sizes × 3 offload strategies) and its
//! threshold detection run. These are the operations `all_experiments`
//! performs thousands of times, so they gate experiment turnaround.
//!
//! ```text
//! cargo bench -p blob-bench --bench sim_sweep
//! ```

use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_core::threshold::{offload_threshold_index, ThresholdPoint};
use blob_sim::{presets, BlasCall, Offload, Precision};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_single_pricing(c: &mut Criterion) {
    let sys = presets::dawn();
    let call = BlasCall::gemm(Precision::F32, 1234, 567, 89);
    c.bench_function("price_one_cpu_call", |b| {
        b.iter(|| black_box(sys.cpu_seconds(black_box(&call), 8)))
    });
    c.bench_function("price_one_gpu_call", |b| {
        b.iter(|| black_box(sys.gpu_seconds(black_box(&call), 8, Offload::Unified)))
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    let sys = presets::lumi();
    c.bench_function("sweep_gemm_4096_sizes", |b| {
        b.iter(|| {
            let s = run_sweep(
                &sys,
                Problem::Gemm(GemmProblem::Square),
                Precision::F32,
                &SweepConfig::paper(8),
            );
            black_box(s.records.len())
        })
    });
    c.bench_function("sweep_gemv_4096_sizes", |b| {
        b.iter(|| {
            let s = run_sweep(
                &sys,
                Problem::Gemv(GemvProblem::Square),
                Precision::F64,
                &SweepConfig::paper(128),
            );
            black_box(s.records.len())
        })
    });
}

fn bench_threshold_detection(c: &mut Criterion) {
    // worst-case-ish series: alternating wins to exercise the noise logic
    let points: Vec<ThresholdPoint> = (0..4096)
        .map(|i| ThresholdPoint {
            cpu_seconds: 1.0 + (i % 7) as f64 * 0.1,
            gpu_seconds: 1.3 + (i % 5) as f64 * 0.05,
        })
        .collect();
    c.bench_function("threshold_detect_4096_points", |b| {
        b.iter(|| black_box(offload_threshold_index(black_box(&points))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_single_pricing, bench_full_sweep, bench_threshold_detection
}
criterion_main!(benches);
