//! Microbenchmarks of the simulator and harness themselves: how fast a
//! full paper-scale sweep (4096 sizes × 3 offload strategies) and its
//! threshold detection run. These are the operations `all_experiments`
//! performs thousands of times, so they gate experiment turnaround.
//!
//! ```text
//! cargo bench -p blob-bench --bench sim_sweep
//! ```

use blob_bench::microbench::{black_box, Bench};
use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_core::threshold::{offload_threshold_index, ThresholdPoint};
use blob_sim::{presets, BlasCall, Offload, Precision};

fn bench_single_pricing(b: &mut Bench) {
    let sys = presets::dawn();
    let call = BlasCall::gemm(Precision::F32, 1234, 567, 89);
    let mut group = b.group("pricing");
    group.bench("price_one_cpu_call", || {
        black_box(sys.cpu_seconds(black_box(&call), 8));
    });
    group.bench("price_one_gpu_call", || {
        black_box(sys.gpu_seconds(black_box(&call), 8, Offload::Unified));
    });
}

fn bench_full_sweep(b: &mut Bench) {
    let sys = presets::lumi();
    let mut group = b.group("sweep");
    group.bench("gemm_4096_sizes", || {
        let s = run_sweep(
            &sys,
            Problem::Gemm(GemmProblem::Square),
            Precision::F32,
            &SweepConfig::paper(8),
        );
        black_box(s.records.len());
    });
    group.bench("gemv_4096_sizes", || {
        let s = run_sweep(
            &sys,
            Problem::Gemv(GemvProblem::Square),
            Precision::F64,
            &SweepConfig::paper(128),
        );
        black_box(s.records.len());
    });
}

fn bench_threshold_detection(b: &mut Bench) {
    // worst-case-ish series: alternating wins to exercise the noise logic
    let points: Vec<ThresholdPoint> = (0..4096)
        .map(|i| ThresholdPoint {
            cpu_seconds: 1.0 + (i % 7) as f64 * 0.1,
            gpu_seconds: 1.3 + (i % 5) as f64 * 0.05,
        })
        .collect();
    let mut group = b.group("threshold");
    group.bench("detect_4096_points", || {
        black_box(offload_threshold_index(black_box(&points)));
    });
}

fn main() {
    let mut b = Bench::from_args("sim_sweep");
    bench_single_pricing(&mut b);
    bench_full_sweep(&mut b);
    bench_threshold_detection(&mut b);
}
