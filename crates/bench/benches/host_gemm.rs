//! Microbenchmarks of the repository's *real* GEMM kernels on the host
//! CPU: reference vs blocked vs parallel across sizes, precision
//! comparison, the β=0 short-circuit, and the paper's non-square shapes.
//!
//! ```text
//! cargo bench -p blob-bench --bench host_gemm
//! ```

use blob_bench::microbench::{black_box, Bench};
use blob_blas::{gemm_blocked, gemm_parallel, gemm_ref};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn bench_square_kernels(b: &mut Bench) {
    let mut group = b.group("gemm_square");
    for &s in &[32usize, 64, 128, 256] {
        let a = filled(s * s, 1);
        let bm = filled(s * s, 2);
        let mut out = vec![0.0f64; s * s];
        group.throughput_elements((2 * s * s * s) as u64);
        group.bench(&format!("reference/{s}"), || {
            gemm_ref(s, s, s, 1.0, &a, s, &bm, s, 0.0, &mut out, s).unwrap();
            black_box(&out);
        });
        group.bench(&format!("blocked/{s}"), || {
            gemm_blocked(s, s, s, 1.0, &a, s, &bm, s, 0.0, &mut out, s).unwrap();
            black_box(&out);
        });
        group.bench(&format!("parallel/{s}"), || {
            gemm_parallel(4, s, s, s, 1.0, &a, s, &bm, s, 0.0, &mut out, s).unwrap();
            black_box(&out);
        });
    }
}

fn bench_precision(b: &mut Bench) {
    let mut group = b.group("gemm_precision");
    let s = 192;
    let a64 = filled(s * s, 1);
    let b64 = filled(s * s, 2);
    let mut c64 = vec![0.0f64; s * s];
    let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
    let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
    let mut c32 = vec![0.0f32; s * s];
    group.bench("dgemm_192", || {
        gemm_blocked(s, s, s, 1.0, &a64, s, &b64, s, 0.0, &mut c64, s).unwrap();
        black_box(&c64);
    });
    group.bench("sgemm_192", || {
        gemm_blocked(s, s, s, 1.0f32, &a32, s, &b32, s, 0.0, &mut c32, s).unwrap();
        black_box(&c32);
    });
}

fn bench_beta_shortcircuit(b: &mut Bench) {
    // Table I in miniature: K = 4 skinny GEMM with beta = 0 vs beta = 2
    let mut group = b.group("gemm_beta");
    let (m, n, k) = (512, 512, 4);
    let a = filled(m * k, 1);
    let bm = filled(k * n, 2);
    let mut out = vec![0.5f64; m * n];
    group.bench("beta0", || {
        gemm_blocked(m, n, k, 1.0, &a, m, &bm, k, 0.0, &mut out, m).unwrap();
        black_box(&out);
    });
    group.bench("beta2", || {
        gemm_blocked(m, n, k, 1.0, &a, m, &bm, k, 2.0, &mut out, m).unwrap();
        black_box(&out);
    });
}

fn bench_paper_shapes(b: &mut Bench) {
    // the paper's non-square archetypes at equal-ish FLOP counts
    let mut group = b.group("gemm_shapes");
    let shapes: [(&str, usize, usize, usize); 5] = [
        ("square", 128, 128, 128),
        ("tall_k", 64, 64, 1024),
        ("tall_m", 1024, 64, 64),
        ("wide_n", 64, 1024, 64),
        ("skinny_k", 256, 256, 32),
    ];
    for (name, m, n, k) in shapes {
        let a = filled(m * k, 1);
        let bm = filled(k * n, 2);
        let mut out = vec![0.0f64; m * n];
        group.throughput_elements((2 * m * n * k) as u64);
        group.bench(name, || {
            gemm_blocked(m, n, k, 1.0, &a, m, &bm, k, 0.0, &mut out, m).unwrap();
            black_box(&out);
        });
    }
}

fn main() {
    let mut b = Bench::from_args("host_gemm");
    bench_square_kernels(&mut b);
    bench_precision(&mut b);
    bench_beta_shortcircuit(&mut b);
    bench_paper_shapes(&mut b);
}
