//! Criterion benchmarks of the repository's *real* GEMV kernels on the
//! host CPU: serial vs parallel across sizes, plus the paper's non-square
//! GEMV shapes and the serial-GEMV effect behind Fig 6 (a serial kernel is
//! capped by one core's bandwidth no matter how wide the socket).
//!
//! ```text
//! cargo bench -p blob-bench --bench host_gemv
//! ```

use blob_blas::{gemv_parallel, gemv_ref};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv_square");
    for &s in &[256usize, 1024, 2048] {
        let a = filled(s * s, 1);
        let x = filled(s, 2);
        let mut y = vec![0.0f64; s];
        group.throughput(Throughput::Elements((2 * s * s) as u64));
        group.bench_with_input(BenchmarkId::new("serial", s), &s, |bench, &s| {
            bench.iter(|| {
                gemv_ref(s, s, 1.0, &a, s, &x, 1, 0.0, &mut y, 1);
                black_box(&y);
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", s), &s, |bench, &s| {
            bench.iter(|| {
                gemv_parallel(4, s, s, 1.0, &a, s, &x, 1, 0.0, &mut y, 1);
                black_box(&y);
            })
        });
    }
    group.finish();
}

fn bench_paper_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemv_shapes");
    let shapes: [(&str, usize, usize); 4] = [
        ("tall_m16n", 4096, 256),
        ("wide_n16m", 256, 4096),
        ("skinny_n32", 4096, 32),
        ("short_m32", 32, 4096),
    ];
    for (name, m, n) in shapes {
        let a = filled(m * n, 1);
        let x = filled(n, 2);
        let mut y = vec![0.0f64; m];
        group.throughput(Throughput::Elements((2 * m * n) as u64));
        group.bench_function(name, |bench| {
            bench.iter(|| {
                gemv_ref(m, n, 1.0, &a, m, &x, 1, 0.0, &mut y, 1);
                black_box(&y);
            })
        });
    }
    group.finish();
}

fn bench_strided(c: &mut Criterion) {
    // strided access patterns (incx = 2) vs unit stride
    let mut group = c.benchmark_group("gemv_stride");
    let s = 1024;
    let a = filled(s * s, 1);
    let x2 = filled(2 * s, 2);
    let mut y = vec![0.0f64; s];
    group.bench_function("incx1", |bench| {
        bench.iter(|| {
            gemv_ref(s, s, 1.0, &a, s, &x2[..s], 1, 0.0, &mut y, 1);
            black_box(&y);
        })
    });
    group.bench_function("incx2", |bench| {
        bench.iter(|| {
            gemv_ref(s, s, 1.0, &a, s, &x2, 2, 0.0, &mut y, 1);
            black_box(&y);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_square, bench_paper_shapes, bench_strided
}
criterion_main!(benches);
