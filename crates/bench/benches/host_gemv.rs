//! Microbenchmarks of the repository's *real* GEMV kernels on the host
//! CPU: serial vs parallel across sizes, plus the paper's non-square GEMV
//! shapes and the serial-GEMV effect behind Fig 6 (a serial kernel is
//! capped by one core's bandwidth no matter how wide the socket).
//!
//! ```text
//! cargo bench -p blob-bench --bench host_gemv
//! ```

use blob_bench::microbench::{black_box, Bench};
use blob_blas::{gemv_parallel, gemv_ref};

fn filled(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let h = seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(i as u64)
                .wrapping_mul(0xbf58476d1ce4e5b9);
            ((h >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn bench_square(b: &mut Bench) {
    let mut group = b.group("gemv_square");
    for &s in &[256usize, 1024, 2048] {
        let a = filled(s * s, 1);
        let x = filled(s, 2);
        let mut y = vec![0.0f64; s];
        group.throughput_elements((2 * s * s) as u64);
        group.bench(&format!("serial/{s}"), || {
            gemv_ref(s, s, 1.0, &a, s, &x, 1, 0.0, &mut y, 1).unwrap();
            black_box(&y);
        });
        group.bench(&format!("parallel/{s}"), || {
            gemv_parallel(4, s, s, 1.0, &a, s, &x, 1, 0.0, &mut y, 1).unwrap();
            black_box(&y);
        });
    }
}

fn bench_paper_shapes(b: &mut Bench) {
    let mut group = b.group("gemv_shapes");
    let shapes: [(&str, usize, usize); 4] = [
        ("tall_m16n", 4096, 256),
        ("wide_n16m", 256, 4096),
        ("skinny_n32", 4096, 32),
        ("short_m32", 32, 4096),
    ];
    for (name, m, n) in shapes {
        let a = filled(m * n, 1);
        let x = filled(n, 2);
        let mut y = vec![0.0f64; m];
        group.throughput_elements((2 * m * n) as u64);
        group.bench(name, || {
            gemv_ref(m, n, 1.0, &a, m, &x, 1, 0.0, &mut y, 1).unwrap();
            black_box(&y);
        });
    }
}

fn bench_strided(b: &mut Bench) {
    // strided access patterns (incx = 2) vs unit stride
    let mut group = b.group("gemv_stride");
    let s = 1024;
    let a = filled(s * s, 1);
    let x2 = filled(2 * s, 2);
    let mut y = vec![0.0f64; s];
    group.bench("incx1", || {
        gemv_ref(s, s, 1.0, &a, s, &x2[..s], 1, 0.0, &mut y, 1).unwrap();
        black_box(&y);
    });
    group.bench("incx2", || {
        gemv_ref(s, s, 1.0, &a, s, &x2, 2, 0.0, &mut y, 1).unwrap();
        black_box(&y);
    });
}

fn main() {
    let mut b = Bench::from_args("host_gemv");
    bench_square(&mut b);
    bench_paper_shapes(&mut b);
    bench_strided(&mut b);
}
