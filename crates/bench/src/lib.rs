//! # blob-bench — experiment drivers for every table and figure
//!
//! One binary per paper element regenerates it from the calibrated system
//! models (see `DESIGN.md` §4 for the index):
//!
//! | Binary            | Paper element |
//! |-------------------|---------------|
//! | `table1`          | Table I — α/β runtime study |
//! | `table3`          | Table III — square GEMM offload thresholds |
//! | `table4`          | Table IV — square GEMV offload thresholds |
//! | `table5`          | Table V — non-square GEMM first-threshold iterations |
//! | `table6`          | Table VI — non-square GEMV first-threshold iterations |
//! | `fig2`            | Fig 2 — DAWN square SGEMM curves (oneMKL 629 cliff) |
//! | `fig3`            | Fig 3 — Isambard-AI CPU library comparison |
//! | `fig4`            | Fig 4 — square DGEMV curves on all systems |
//! | `fig5`            | Fig 5 — square SGEMV at 128 iterations |
//! | `fig6`            | Fig 6 — AOCL vs OpenBLAS DGEMV on LUMI |
//! | `fig7`            | Fig 7 — DAWN implicit vs explicit scaling |
//! | `fig_timeline`    | supplementary: offload-strategy Gantt timelines |
//! | `roofline`        | supplementary: per-system rooflines (§IV-C's AI argument) |
//! | `ext_batched`     | future work §V: batched-BLAS thresholds |
//! | `ext_matrix_engine` | future work §V: AMX/SME/MMA-class engines |
//! | `ext_spmv`        | future work §V: sparse SpMV thresholds |
//! | `ext_trsm`        | related work: Li et al.'s TRSM crossover + transfer critique |
//! | `ext_hybrid`      | related work: MAGMA-style CPU+GPU splits; MI300A limit |
//! | `ext_energy`      | related work: energy offload thresholds |
//! | `ablation_quirks` | counterfactuals: presets with individual quirks removed |
//! | `fit_presets`     | calibration methodology: coordinate-descent refinement |
//! | `report`          | per-system markdown reports |
//! | `all_experiments` | everything above, written to `results/` |
//!
//! This library holds the shared sweep/table plumbing plus the
//! [`microbench`] harness; `benches/` holds microbenchmarks of the *real*
//! host BLAS kernels built on it.

pub mod microbench;

use blob_analysis::{sd_pair_cell, Table};
use blob_core::problem::Problem;
use blob_core::runner::{run_sweep, Sweep, SweepConfig};
use blob_sim::{Kernel, Offload, Precision, SystemModel};
use std::path::PathBuf;

/// Where experiment outputs (CSV, SVG, tables) are written.
pub fn results_dir() -> PathBuf {
    std::env::var_os("BLOB_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// The paper's sweep: `-s 1 -d 4096`, every size.
pub fn paper_sweep(iterations: u32) -> SweepConfig {
    SweepConfig::paper(iterations)
}

/// Runs the sweep for one (system, problem, precision, iterations).
pub fn sweep(sys: &SystemModel, problem: Problem, precision: Precision, iters: u32) -> Sweep {
    run_sweep(sys, problem, precision, &paper_sweep(iters))
}

/// The dominant (reported) dimension of a threshold for the compact `S:D`
/// table cells: the size parameter that generated the dims.
pub fn threshold_param(problem: Problem, t: Option<Kernel>) -> Option<usize> {
    let dims = t?.dims();
    let (m, n, k) = dims;
    use blob_core::problem::{GemmProblem as G, GemvProblem as V};
    Some(match problem {
        Problem::Gemm(G::Square) | Problem::Gemm(G::TallK) | Problem::Gemm(G::SquareK32) => m,
        Problem::Gemm(G::SixteenthK) => m,
        Problem::Gemm(G::FixedMn32) => k,
        Problem::Gemm(G::TallM) => k,
        Problem::Gemm(G::FixedKn32) => m,
        Problem::Gemm(G::WideN) => k,
        Problem::Gemm(G::FixedMk32) => n,
        Problem::Gemv(V::Square) => m,
        Problem::Gemv(V::TallM) => n,
        Problem::Gemv(V::FixedN32) => m,
        Problem::Gemv(V::WideN) => m,
        Problem::Gemv(V::FixedM32) => n,
    })
}

/// One row of a Table III/IV-style threshold grid.
#[derive(Debug, Clone)]
pub struct ThresholdRow {
    /// Iteration count of the row's timed loops.
    pub iterations: u32,
    /// Per offload (paper column order): `(SGEMM/SGEMV, DGEMM/DGEMV)`
    /// threshold size parameters, `None` = no threshold.
    pub cells: Vec<(Option<usize>, Option<usize>)>,
}

/// Computes the Table III/IV threshold grid for one system and problem.
pub fn threshold_grid(sys: &SystemModel, problem: Problem) -> Vec<ThresholdRow> {
    SweepConfig::PAPER_ITERATIONS
        .iter()
        .map(|&iters| {
            let s32 = sweep(sys, problem, Precision::F32, iters);
            let s64 = sweep(sys, problem, Precision::F64, iters);
            let cells = Offload::ALL
                .iter()
                .map(|&o| {
                    (
                        threshold_param(problem, s32.threshold(o)),
                        threshold_param(problem, s64.threshold(o)),
                    )
                })
                .collect();
            ThresholdRow {
                iterations: iters,
                cells,
            }
        })
        .collect()
}

/// Renders a Table III/IV-style table for several systems side by side.
pub fn threshold_table(title: &str, systems: &[&SystemModel], problem: Problem) -> Table {
    let mut headers: Vec<String> = vec!["Iterations".into()];
    for sys in systems {
        for o in Offload::ALL {
            headers.push(format!("{} {}", sys.name, o.label()));
        }
    }
    let mut table = Table::new(
        title,
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let grids: Vec<Vec<ThresholdRow>> = systems
        .iter()
        .map(|sys| threshold_grid(sys, problem))
        .collect();
    for (i, &iters) in SweepConfig::PAPER_ITERATIONS.iter().enumerate() {
        let mut row = vec![iters.to_string()];
        for grid in &grids {
            for &(s, d) in &grid[i].cells {
                row.push(sd_pair_cell(s, d));
            }
        }
        table.push_row(row);
    }
    table
}

/// First iteration count (of the paper's five) at which a problem type
/// yields a Transfer-Once threshold, or `None` — the cell format of
/// Tables V and VI.
pub fn first_threshold_iteration(
    sys: &SystemModel,
    problem: Problem,
    precision: Precision,
) -> Option<u32> {
    SweepConfig::PAPER_ITERATIONS
        .iter()
        .copied()
        .find(|&iters| {
            sweep(sys, problem, precision, iters)
                .threshold(Offload::TransferOnce)
                .is_some()
        })
}

/// Formats a Table V/VI cell, e.g. `1:1`, `8:—`.
pub fn first_iteration_cell(s: Option<u32>, d: Option<u32>) -> String {
    let f = |v: Option<u32>| v.map(|x| x.to_string()).unwrap_or_else(|| "—".into());
    format!("{}:{}", f(s), f(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_core::problem::{GemmProblem, GemvProblem};
    use blob_sim::presets;

    #[test]
    fn threshold_param_inverts_dims() {
        let p = Problem::Gemm(GemmProblem::TallM); // (16k, k, k)
        let t = Some(p.dims(10));
        assert_eq!(threshold_param(p, t), Some(10));
        let v = Problem::Gemv(GemvProblem::WideN); // (m, 16m)
        assert_eq!(threshold_param(v, Some(v.dims(7))), Some(7));
        assert_eq!(threshold_param(v, None), None);
    }

    #[test]
    fn grid_has_five_rows_three_offloads() {
        let sys = presets::isambard_ai();
        let grid = threshold_grid(&sys, Problem::Gemm(GemmProblem::Square));
        assert_eq!(grid.len(), 5);
        assert!(grid.iter().all(|r| r.cells.len() == 3));
    }

    #[test]
    fn first_iteration_cells() {
        assert_eq!(first_iteration_cell(Some(1), Some(1)), "1:1");
        assert_eq!(first_iteration_cell(None, Some(8)), "—:8");
        assert_eq!(first_iteration_cell(None, None), "—:—");
    }
}
