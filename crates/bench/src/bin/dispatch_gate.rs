//! `dispatch_gate` — proves the online dispatcher earns its keep.
//!
//! The dispatch plane's contract is that on a mixed workload — small
//! GEMMs (32–128, below the paper's offload threshold) interleaved with
//! large ones (512–1024, far above it) — the `auto` policy's total
//! realized time is **strictly less** than both static policies on the
//! same trace: `always-cpu` wastes the GPU on the large calls,
//! `always-gpu` pays per-call offload overhead and first-touch migration
//! on the small ones. If a model change ever collapses the CPU/GPU
//! crossover (so one static policy dominates), this gate fails before a
//! misleading "auto wins" claim lands anywhere.
//!
//! The gate replays the comparison over several seeds and both a
//! GEMM-only and a GEMM+GEMV trace on the calibrated Isambard-AI model,
//! requiring a win on every one. Results land in
//! `results/dispatch_gate.csv`.
//!
//! ```text
//! cargo run --release -p blob-bench --bin dispatch_gate
//! ```

use blob_bench::results_dir;
use blob_core::fault;
use blob_dispatch::{compare_policies, mixed_trace, Hysteresis, MixedTraceSpec};
use blob_sim::presets;
use std::process::ExitCode;

/// Trace length per experiment: long enough for the estimator to settle
/// and for flips to show up, short enough that the gate runs in
/// milliseconds (the backend is the calibrated model).
const CALLS: usize = 120;

/// Seeds replayed per trace variant; the win must hold on all of them.
const SEEDS: [u64; 3] = [42, 7, 1913];

/// GEMV cadences exercised: GEMM-only, and one GEMV in every five calls.
const GEMV_EVERY: [usize; 2] = [0, 5];

fn main() -> ExitCode {
    // The gate times decision quality, not fault recovery; a plan left
    // installed (GPU_BLOB_FAULTS?) would corrupt the comparison.
    if fault::active() {
        eprintln!("dispatch_gate: a fault plan is installed — unset it first");
        return ExitCode::from(2);
    }

    let system = presets::isambard_ai();
    println!("dispatch_gate: auto vs static policies on mixed traces ({CALLS} calls each)");
    let mut csv = String::from(
        "seed,gemv_every,auto_s,always_cpu_s,always_gpu_s,auto_flips,auto_gpu_calls\n",
    );
    let mut failures = 0usize;
    for &gemv_every in &GEMV_EVERY {
        for &seed in &SEEDS {
            let spec = MixedTraceSpec {
                seed,
                calls: CALLS,
                gemv_every,
                ..MixedTraceSpec::default()
            };
            let trace = mixed_trace(&spec);
            let results = compare_policies(&system, &trace, Hysteresis::default());
            let (auto, cpu, gpu) = (&results[0], &results[1], &results[2]);
            let ok = auto.stats.realized_seconds < cpu.stats.realized_seconds
                && auto.stats.realized_seconds < gpu.stats.realized_seconds;
            if !ok {
                failures += 1;
            }
            println!(
                "  seed {seed:>5} gemv_every {gemv_every}: auto {:.4} ms | always-cpu {:.4} ms | \
                 always-gpu {:.4} ms | flips {} -> {}",
                auto.stats.realized_seconds * 1e3,
                cpu.stats.realized_seconds * 1e3,
                gpu.stats.realized_seconds * 1e3,
                auto.stats.flips,
                if ok { "ok" } else { "FAIL" }
            );
            csv.push_str(&format!(
                "{seed},{gemv_every},{:.9},{:.9},{:.9},{},{}\n",
                auto.stats.realized_seconds,
                cpu.stats.realized_seconds,
                gpu.stats.realized_seconds,
                auto.stats.flips,
                auto.stats.gpu_calls,
            ));
        }
    }

    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("dispatch_gate.csv");
    if let Err(e) = blob_core::atomicio::write_atomic(&path, csv.as_bytes()) {
        eprintln!("dispatch_gate: writing {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }

    if failures == 0 {
        println!("dispatch_gate: ok — auto strictly beat both static policies on every trace");
        ExitCode::SUCCESS
    } else {
        eprintln!("dispatch_gate: FAILED — {failures} trace(s) where a static policy won");
        ExitCode::FAILURE
    }
}
