//! Regenerates **Table VI**: the iteration count at which each non-square
//! SGEMV:DGEMV problem type first yields a Transfer-Once offload threshold.
//!
//! ```text
//! cargo run -p blob-bench --release --bin table6
//! ```

use blob_analysis::Table;
use blob_bench::{first_iteration_cell, first_threshold_iteration};
use blob_core::problem::{GemvProblem, Problem};
use blob_sim::{presets, Precision};

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];
    let mut table = Table::new(
        "Table VI — Iteration count at which each non-square SGEMV:DGEMV problem type first yields an offload threshold",
        &["Problem type", "DAWN", "LUMI", "Isambard-AI"],
    );
    for &v in &GemvProblem::NON_SQUARE {
        let problem = Problem::Gemv(v);
        let mut row = vec![problem.label().to_string()];
        for sys in &systems {
            let s = first_threshold_iteration(sys, problem, Precision::F32);
            let d = first_threshold_iteration(sys, problem, Precision::F64);
            row.push(first_iteration_cell(s, d));
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("Paper reference (SGEMV:DGEMV first-threshold iteration count):");
    println!("  M=16N         | —:— | 8:8   | 1:1");
    println!("  N=32, M>=1    | —:— | 64:32 | 1:1");
    println!("  N=16M         | —:— | —:—   | 1:1");
    println!("  M=32, N>=1    | —:— | —:—   | 1:1");
}
