//! **Extension experiment** (paper future work §V, batched BLAS): how does
//! the GPU offload threshold move when `batch` small GEMMs are issued as a
//! single batched call?
//!
//! The paper's hypothesis, from Cecka and Dongarra et al.: batched kernels
//! "can greatly improve GEMM performance for small problem sizes if many
//! can be computed concurrently" — so the offload threshold should fall as
//! the batch count grows, most dramatically on PCIe systems where per-call
//! costs dominate small problems.
//!
//! ```text
//! cargo run -p blob-bench --release --bin ext_batched
//! ```

use blob_analysis::Table;
use blob_sim::{presets, BlasCall, Offload, Precision};

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];
    let batches = [1usize, 8, 64, 512];

    let mut table = Table::new(
        "Batched square SGEMM Transfer-Once offload threshold (per-instance size) vs batch count, 8 iterations",
        &["Batch", "DAWN", "LUMI", "Isambard-AI"],
    );
    for &batch in &batches {
        let mut row = vec![batch.to_string()];
        for sys in &systems {
            let t =
                sys.batched_gemm_threshold(Precision::F32, batch, 8, Offload::TransferOnce, 2048);
            row.push(t.map(|v| v.to_string()).unwrap_or_else(|| "—".into()));
        }
        table.push_row(row);
    }
    println!("{}", table.render());

    // per-instance GFLOP/s for a small GEMM, batched vs looped, on the GPU
    let call = BlasCall::gemm(Precision::F32, 48, 48, 48);
    println!("GPU time for 512 instances of SGEMM 48^3 (kernel only):");
    for sys in &systems {
        let gpu = sys.gpu.as_ref().unwrap();
        let lib = sys.gpu_lib.as_ref().unwrap();
        let looped = 512.0 * blob_sim::gpu::gpu_kernel_seconds(gpu, lib, &call);
        let batched = blob_sim::batch::gpu_batched_kernel_seconds(gpu, lib, &call, 512);
        println!(
            "  {:<12} looped {:>9.1} us | batched {:>9.1} us ({:>5.1}x faster)",
            sys.name,
            looped * 1e6,
            batched * 1e6,
            looped / batched
        );
    }
    println!();
    println!("Expected shape: thresholds fall substantially from batch 1 to large");
    println!("batches (not always monotonically: batching feeds the CPU's ramp too,");
    println!("so mid-size batches can briefly favour the CPU). The kernel-only");
    println!("comparison shows why batching exists: one launch amortises what");
    println!("hundreds of separate launches cannot.");
}
