//! Regenerates **Fig 6**: AOCL 4.1 vs OpenBLAS 0.3.24 square DGEMV CPU
//! performance (128 iterations) on LUMI.
//!
//! The paper's discovery (via `perf stat`): AOCL does not parallelise GEMV
//! — a 2048² SGEMV used 0.89 CPUs — so one core's stream bandwidth caps it.
//! OpenBLAS multithreads GEMV: far better at large sizes, worse at small
//! ones, and it removes *every* GEMV offload threshold on LUMI.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig6
//! ```

use blob_analysis::{ascii_chart, write_svg, Series};
use blob_bench::{results_dir, sweep};
use blob_core::problem::{GemvProblem, Problem};
use blob_core::runner::SweepConfig;
use blob_sim::{presets, Offload, Precision};

fn main() {
    let aocl = sweep(
        &presets::lumi(),
        Problem::Gemv(GemvProblem::Square),
        Precision::F64,
        128,
    );
    let openblas = sweep(
        &presets::lumi_openblas(),
        Problem::Gemv(GemvProblem::Square),
        Precision::F64,
        128,
    );
    let series = vec![
        Series::from_usize("AOCL 4.1 (serial GEMV)", &aocl.cpu_series()),
        Series::from_usize("OpenBLAS 0.3.24 (56T)", &openblas.cpu_series()),
    ];
    let title = "Fig 6 — AOCL vs OpenBLAS square DGEMV CPU performance (128 iters) on LUMI";
    println!("{}", ascii_chart(title, &series, 100, 20));

    let at = |s: &Series, x: f64| {
        s.points
            .iter()
            .find(|p| p.0 >= x)
            .map(|p| p.1)
            .unwrap_or(0.0)
    };
    println!(
        "GFLOP/s at 150:  AOCL {:.2} | OpenBLAS {:.2}  (AOCL better at small sizes)",
        at(&series[0], 150.0),
        at(&series[1], 150.0)
    );
    println!(
        "GFLOP/s at 3000: AOCL {:.2} | OpenBLAS {:.2}  (OpenBLAS streams the full socket)",
        at(&series[0], 3000.0),
        at(&series[1], 3000.0)
    );

    // the paper's punchline: with OpenBLAS, no GEMV threshold at any
    // iteration count or transfer type
    let mut any = false;
    for iters in SweepConfig::PAPER_ITERATIONS {
        let s = sweep(
            &presets::lumi_openblas(),
            Problem::Gemv(GemvProblem::Square),
            Precision::F64,
            iters,
        );
        for o in Offload::ALL {
            if s.threshold(o).is_some() {
                any = true;
                println!("unexpected threshold with OpenBLAS: {iters} iters, {o}");
            }
        }
    }
    if !any {
        println!("OpenBLAS produces no square-GEMV offload threshold at any iteration count ✓");
    }

    let path = results_dir().join("fig6_lumi_aocl_vs_openblas.svg");
    write_svg(&path, title, "M = N", "GFLOP/s", &series).expect("write SVG");
    println!("wrote {}", path.display());
}
