//! **Extension experiment** (motivated by the paper's related work —
//! Favaro et al. and Torres et al. compare devices by *energy*): where is
//! the energy offload threshold, and when does it disagree with the time
//! threshold?
//!
//! Whole-node accounting: the idle device keeps burning watts while the
//! other computes, so the race is (CPU active + GPU idle) seconds vs
//! (GPU active + CPU idle) seconds.
//!
//! ```text
//! cargo run -p blob-bench --release --bin ext_energy
//! ```

use blob_analysis::Table;
use blob_sim::{
    cpu_energy_joules, energy_gemm_threshold, gpu_energy_joules, presets, BlasCall, Offload,
    PowerModel, Precision,
};

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];

    let mut table = Table::new(
        "Square SGEMM offload thresholds, time vs whole-node energy (Transfer-Once)",
        &["Iterations", "DAWN t/E", "LUMI t/E", "Isambard-AI t/E"],
    );
    for iters in [8u32, 32, 128] {
        let mut row = vec![iters.to_string()];
        for sys in &systems {
            let power = PowerModel::for_system(sys);
            // time threshold via the same scan the energy one uses
            let time = {
                let mut last = None;
                let mut prev = false;
                for s in 1..=2048usize {
                    let c = BlasCall::gemm(Precision::F32, s, s, s);
                    let w = sys.cpu_seconds(&c, iters)
                        < sys.gpu_seconds(&c, iters, Offload::TransferOnce).unwrap();
                    if w && (prev || s == 1) {
                        last = Some(s);
                    }
                    prev = w;
                }
                match last {
                    None => Some(1), // GPU durably ahead from the start
                    Some(s) if s < 2048 => Some(s + 1),
                    Some(_) => None,
                }
            };
            let energy = energy_gemm_threshold(
                sys,
                &power,
                Precision::F32,
                iters,
                Offload::TransferOnce,
                2048,
            );
            let f = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "—".into());
            row.push(format!("{} / {}", f(time), f(energy)));
        }
        table.push_row(row);
    }
    println!("{}", table.render());

    // joules per call at a representative size
    println!("Whole-node energy for SGEMM 2048^3 x 32 iterations (Transfer-Once):");
    for sys in &systems {
        let power = PowerModel::for_system(sys);
        let call = BlasCall::gemm(Precision::F32, 2048, 2048, 2048);
        let e_cpu = cpu_energy_joules(sys, &power, &call, 32);
        let e_gpu = gpu_energy_joules(sys, &power, &call, 32, Offload::TransferOnce).unwrap();
        println!(
            "  {:<12} CPU {:>8.1} J | GPU {:>8.1} J -> {} saves {:.1}x",
            sys.name,
            e_cpu,
            e_gpu,
            if e_gpu < e_cpu { "GPU" } else { "CPU" },
            (e_cpu / e_gpu).max(e_gpu / e_cpu)
        );
    }
    println!();
    println!("Expected shape: on DAWN the GPU node draws slightly *less* than the CPU");
    println!("node, so the energy threshold sits at or below the time threshold; on");
    println!("the GH200 the H100's wattage premium means small problems stay on the");
    println!("CPU a bit longer by joules than by seconds — but at GEMM sizes that");
    println!("matter the GPU wins both races by a wide margin.");
}
