//! Regenerates **Table I**: SGEMM run-times (100 iterations) for different
//! devices and BLAS libraries, varying α and β — the study that motivates
//! GPU-BLOB's `q`-term FLOPs formula (§III-A).
//!
//! M = N = 8192, K = 4; configurations (α, β) ∈ {(1,0), (4,0), (1,2)}.
//! The paper's finding: β=0 is 1.2×–1.7× faster than β=2 (the `β·C` and
//! `AB + C` work is skipped), while α's value changes nothing.
//!
//! ```text
//! cargo run -p blob-bench --release --bin table1
//! ```

use blob_analysis::Table;
use blob_sim::{presets, BlasCall, Offload, Precision, SystemModel};

fn fmt_ms(seconds: f64) -> String {
    format!("{:.2} ms", seconds * 1e3)
}

/// Times 100 iterations of the Table I SGEMM on a device (GPU kernel time
/// for GPU rows — data is resident, as in the paper's measurement — CPU
/// time for CPU rows).
fn time_config(sys: &SystemModel, alpha: f64, beta: f64, gpu: bool) -> f64 {
    let call = BlasCall::gemm(Precision::F32, 8192, 8192, 4).with_scalars(alpha, beta);
    if gpu {
        // Transfer-Once at 100 iterations ~ resident-data kernel timing
        sys.gpu_seconds(&call, 100, Offload::TransferOnce)
            .expect("table1 GPU systems model a GPU")
    } else {
        sys.cpu_seconds(&call, 100)
    }
}

fn main() {
    let configs: Vec<(SystemModel, &str, bool)> = vec![
        (presets::a100_cublas(), "NVIDIA A100 40GB SXM", true),
        (presets::mi250x_rocblas_table1(), "AMD MI250X", true),
        (
            presets::max1550_onemkl_table1(),
            "Intel Data Center GPU Max 1550",
            true,
        ),
        (
            presets::xeon8468_onemkl_1t(),
            "Intel Xeon Platinum 8468",
            false,
        ),
        (presets::epyc7543_aocl_1t(), "AMD EPYC 7543P", false),
    ];

    let mut table = Table::new(
        "Table I — SGEMM run-times (100 iterations), M=N=8192, K=4",
        &[
            "Library/Device",
            "a=1 b=0",
            "a=4 b=0",
            "a=1 b=2",
            "b=2 / b=0",
        ],
    );
    for (sys, device, gpu) in &configs {
        let t10 = time_config(sys, 1.0, 0.0, *gpu);
        let t40 = time_config(sys, 4.0, 0.0, *gpu);
        let t12 = time_config(sys, 1.0, 2.0, *gpu);
        table.push_row(vec![
            device.to_string(),
            fmt_ms(t10),
            fmt_ms(t40),
            fmt_ms(t12),
            format!("{:.2}x", t12 / t10),
        ]);
    }
    println!("{}", table.render());
    println!("Paper reference (a=1 b=0 | a=4 b=0 | a=1 b=2):");
    println!("  A100/cuBLAS     39.53 | 39.23 | 62.02 ms   (1.57x)");
    println!("  MI250X/rocBLAS 188.64 | 188.35 | 210.46 ms (1.12x)");
    println!("  Max1550/oneMKL  33.34 | 32.99 | 57.78 ms   (1.73x)");
    println!("  Xeon/oneMKL-1T 2307 | 2350 | 3137 ms       (1.36x)");
    println!("  EPYC/AOCL-1T   6833 | 6757 | 9175 ms       (1.34x)");
    println!();
    println!(
        "Conclusion reproduced: beta=0 skips the beta*C and AB+C work (speedup band\n\
         ~1.2x-2x), alpha's value makes no measurable difference — hence GPU-BLOB's\n\
         FLOPs formula 2MNK + MN + qMN with q = 0 iff beta = 0."
    );
}
