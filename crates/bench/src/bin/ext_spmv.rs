//! **Extension experiment** (paper future work §V, sparse BLAS): where is
//! the SpMV offload threshold, and how does it depend on structure?
//!
//! Sweeps banded and random-sparsity SpMV across matrix sizes, iteration
//! counts and transfer types on the three modelled systems, and
//! cross-validates the model's CSR byte accounting against this repo's
//! real CSR kernels.
//!
//! ```text
//! cargo run -p blob-bench --release --bin ext_spmv
//! ```

use blob_analysis::Table;
use blob_blas::CsrMatrix;
use blob_sim::{presets, Offload, Precision, SpmvCall, SystemModel};

/// Smallest n (of the swept grid) from which the GPU durably wins.
fn spmv_threshold(
    sys: &SystemModel,
    make: impl Fn(usize) -> SpmvCall,
    iters: u32,
    offload: Offload,
) -> Option<usize> {
    let grid: Vec<usize> = (1..=64).map(|i| i * 4096).collect();
    let pts: Vec<(usize, f64, f64)> = grid
        .iter()
        .map(|&n| {
            let c = make(n);
            (
                n,
                sys.cpu_spmv_seconds(&c, iters),
                sys.gpu_spmv_seconds(&c, iters, offload).unwrap(),
            )
        })
        .collect();
    let last_cpu = pts.iter().rposition(|&(_, c, g)| c < g);
    match last_cpu {
        None => Some(grid[0]),
        Some(i) if i + 1 < pts.len() => Some(pts[i + 1].0),
        Some(_) => None,
    }
}

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];

    for (label, make) in [
        (
            "banded (32 nnz/row, high locality)",
            (|n: usize| SpmvCall::banded(n, 32, Precision::F64)) as fn(usize) -> SpmvCall,
        ),
        (
            "random (0.1% dense, poor locality)",
            (|n: usize| SpmvCall::random(n, 1e-3, Precision::F64)) as fn(usize) -> SpmvCall,
        ),
    ] {
        let mut table = Table::new(
            format!("DSpMV offload threshold (matrix rows) — {label}"),
            &[
                "Iterations",
                "DAWN Once",
                "LUMI Once",
                "Isambard Once",
                "Always (all)",
            ],
        );
        for iters in [1u32, 8, 32, 128] {
            let mut row = vec![iters.to_string()];
            for sys in &systems {
                let t = spmv_threshold(sys, make, iters, Offload::TransferOnce);
                row.push(t.map(|v| v.to_string()).unwrap_or_else(|| "—".into()));
            }
            // Transfer-Always: report whether ANY system ever pays
            let any = systems
                .iter()
                .any(|s| spmv_threshold(s, make, iters, Offload::TransferAlways).is_some());
            row.push(if any { "yes".into() } else { "—".into() });
            table.push_row(row);
        }
        println!("{}", table.render());
    }

    // cross-check the byte accounting against the real CSR kernel
    let n = 4096;
    let band = 5;
    let mut trip = Vec::new();
    for i in 0..n {
        for d in 0..band {
            let j = (i + d * 7) % n;
            trip.push((i, j, ((i * 31 + j) % 17) as f64 / 17.0 - 0.5));
        }
    }
    let m = CsrMatrix::from_triplets(n, n, trip);
    let model = SpmvCall {
        rows: n,
        cols: n,
        nnz: m.nnz(),
        precision: Precision::F64,
        locality: 0.5,
    };
    println!(
        "cross-check: real CSR {}x{} nnz={} (density {:.4}) -> model prices {:.1} us/iteration on DAWN's CPU",
        m.rows(),
        m.cols(),
        m.nnz(),
        m.density(),
        presets::dawn().cpu_spmv_seconds(&model, 1) * 1e6
    );
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).cos()).collect();
    let mut y1 = vec![0.0; n];
    let mut y2 = vec![0.0; n];
    m.spmv(1.0, &x, 0.0, &mut y1);
    m.spmv_parallel(4, 1.0, &x, 0.0, &mut y2);
    assert_eq!(y1, y2, "serial and parallel SpMV agree");
    println!("serial and parallel CSR kernels agree on all {n} rows.");
    println!();
    println!("Expected shape: SpMV behaves like an even lower-AI GEMV — re-use is");
    println!("required on DAWN and Isambard-AI, and Transfer-Always never pays where");
    println!("the CPU streams at socket bandwidth. LUMI is the model's Fig-6-style");
    println!("prediction: a serial CPU sparse kernel loses to the interconnect's DMA");
    println!("rate, so even low-re-use SpMV can pay there. Random scatter offloads");
    println!("earlier than banded (GPUs hide gather latency better than a CPU).");
}
