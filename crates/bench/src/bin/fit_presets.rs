//! **Calibration methodology**: automatic refinement of the preset models
//! against the paper's Table III targets.
//!
//! The presets in `blob-sim` were calibrated manually (hardware numbers
//! from public specs, library envelopes tuned until Tables III–VI match
//! the paper's structure — see DESIGN.md §5). This binary makes that step
//! reproducible: starting from the shipped presets, it runs coordinate
//! descent on five per-system knobs (CPU/GPU ramp half-works, CPU
//! overhead, GPU launch, cache-warmth boost) to minimise the log-distance
//! between modelled and published square-GEMM thresholds, and reports the
//! residual per table cell.
//!
//! It does *not* overwrite the presets — it prints what the optimiser
//! found so a maintainer can audit the trade-offs before adopting them.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fit_presets
//! ```

use blob_bench::{threshold_grid, ThresholdRow};
use blob_core::problem::{GemmProblem, Problem};
use blob_sim::{presets, SystemModel};

/// Paper Table III, square GEMM thresholds as (S, D) options per
/// (iteration row, offload column), per system. `None` = `—`.
type Cell = (Option<usize>, Option<usize>);

fn paper_targets(system: &str) -> Vec<[Cell; 3]> {
    // rows: iterations 1, 8, 32, 64, 128; columns: Once, Always, USM
    match system {
        "DAWN" => vec![
            [
                (Some(629), Some(582)),
                (Some(629), Some(582)),
                (Some(657), Some(626)),
            ],
            [
                (Some(572), Some(485)),
                (Some(629), Some(603)),
                (Some(596), Some(529)),
            ],
            [
                (Some(514), Some(377)),
                (Some(1018), Some(833)),
                (Some(509), Some(389)),
            ],
            [
                (Some(514), Some(361)),
                (Some(1153), Some(1153)),
                (Some(465), Some(436)),
            ],
            [
                (Some(514), Some(361)),
                (Some(1265), Some(1153)),
                (Some(412), Some(377)),
            ],
        ],
        "LUMI" => vec![
            [(Some(502), Some(237)), (Some(441), Some(234)), (None, None)],
            [
                (Some(153), Some(125)),
                (Some(512), Some(256)),
                (Some(606), Some(539)),
            ],
            [
                (Some(2), Some(2)),
                (Some(512), Some(461)),
                (Some(442), Some(256)),
            ],
            [
                (Some(2), Some(2)),
                (Some(589), Some(961)),
                (Some(381), Some(239)),
            ],
            [
                (Some(2), Some(2)),
                (Some(512), Some(1009)),
                (Some(189), Some(153)),
            ],
        ],
        _ => vec![
            [
                (Some(26), Some(26)),
                (Some(26), Some(26)),
                (Some(196), Some(411)),
            ],
            [
                (Some(26), Some(26)),
                (Some(26), Some(26)),
                (Some(26), Some(26)),
            ],
            [
                (Some(26), Some(26)),
                (Some(26), Some(26)),
                (Some(26), Some(26)),
            ],
            [
                (Some(26), Some(26)),
                (Some(26), Some(26)),
                (Some(26), Some(26)),
            ],
            [
                (Some(26), Some(26)),
                (Some(26), Some(26)),
                (Some(26), Some(26)),
            ],
        ],
    }
}

/// Log-space distance between a modelled and a target threshold; presence
/// mismatches cost a flat penalty comparable to a large size error.
fn cell_loss(model: Option<usize>, target: Option<usize>) -> f64 {
    match (model, target) {
        (Some(m), Some(t)) => {
            let (m, t) = (m.max(1) as f64, t.max(1) as f64);
            (m.ln() - t.ln()).abs()
        }
        (None, None) => 0.0,
        _ => 3.0, // ~e^3 = 20x size error
    }
}

fn grid_loss(grid: &[ThresholdRow], targets: &[[Cell; 3]]) -> f64 {
    let mut loss = 0.0;
    for (row, trow) in grid.iter().zip(targets.iter()) {
        for (cell, tcell) in row.cells.iter().zip(trow.iter()) {
            loss += cell_loss(cell.0, tcell.0);
            loss += cell_loss(cell.1, tcell.1);
        }
    }
    loss
}

/// The tunable knobs, as multipliers applied to a base system.
#[derive(Debug, Clone, Copy)]
struct Knobs {
    cpu_half_work: f64,
    gpu_half_work: f64,
    cpu_overhead: f64,
    gpu_launch: f64,
    warm_boost: f64,
}

impl Knobs {
    fn unit() -> Self {
        Self {
            cpu_half_work: 1.0,
            gpu_half_work: 1.0,
            cpu_overhead: 1.0,
            gpu_launch: 1.0,
            warm_boost: 1.0,
        }
    }
    fn get(&self, i: usize) -> f64 {
        [
            self.cpu_half_work,
            self.gpu_half_work,
            self.cpu_overhead,
            self.gpu_launch,
            self.warm_boost,
        ][i]
    }
    fn set(&mut self, i: usize, v: f64) {
        match i {
            0 => self.cpu_half_work = v,
            1 => self.gpu_half_work = v,
            2 => self.cpu_overhead = v,
            3 => self.gpu_launch = v,
            _ => self.warm_boost = v,
        }
    }
    const NAMES: [&'static str; 5] = [
        "cpu_half_work",
        "gpu_half_work",
        "cpu_overhead",
        "gpu_launch",
        "warm_boost",
    ];
}

fn apply(base: &SystemModel, k: &Knobs) -> SystemModel {
    let mut sys = base.clone();
    sys.cpu_lib.gemm_half_work *= k.cpu_half_work;
    sys.cpu_lib.call_overhead_us *= k.cpu_overhead;
    // boost multiplier scales the warm *gain* (boost - 1)
    sys.cpu_lib.warm_rate_boost = 1.0 + (sys.cpu_lib.warm_rate_boost - 1.0) * k.warm_boost;
    if let Some(lib) = sys.gpu_lib.as_mut() {
        lib.gemm_half_work *= k.gpu_half_work;
        lib.launch_us *= k.gpu_launch;
    }
    sys
}

fn evaluate(base: &SystemModel, k: &Knobs, targets: &[[Cell; 3]]) -> f64 {
    let sys = apply(base, k);
    let grid = threshold_grid(&sys, Problem::Gemm(GemmProblem::Square));
    grid_loss(&grid, targets)
}

fn main() {
    for base in [presets::dawn(), presets::lumi(), presets::isambard_ai()] {
        let targets = paper_targets(base.name);
        let mut knobs = Knobs::unit();
        let mut best = evaluate(&base, &knobs, &targets);
        let initial = best;
        println!("{}: initial Table III loss {:.3}", base.name, initial);

        // coordinate descent with multiplicative probes, two rounds
        for round in 0..2 {
            for i in 0..5 {
                for &step in &[0.7, 0.85, 1.2, 1.4] {
                    let mut probe = knobs;
                    probe.set(i, (knobs.get(i) * step).clamp(0.25, 4.0));
                    let loss = evaluate(&base, &probe, &targets);
                    if loss + 1e-9 < best {
                        best = loss;
                        knobs = probe;
                    }
                }
            }
            println!("  after round {}: loss {:.3}", round + 1, best);
        }

        println!(
            "  improvement: {:.1}% (loss {:.3} -> {:.3})",
            (1.0 - best / initial.max(1e-9)) * 100.0,
            initial,
            best
        );
        for i in 0..5 {
            if (knobs.get(i) - 1.0).abs() > 1e-9 {
                println!("    {:<14} x{:.3}", Knobs::NAMES[i], knobs.get(i));
            }
        }
        if (0..5).all(|i| (knobs.get(i) - 1.0).abs() < 1e-9) {
            println!("    (shipped preset already at a local optimum)");
        }
        println!();
    }
    println!("Note: the optimiser only sees Table III; a maintainer must check the");
    println!("other tables and figures before adopting any knob (the shipped presets");
    println!("balance all of them — see EXPERIMENTS.md).");
}
