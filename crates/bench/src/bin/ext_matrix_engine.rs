//! **Extension experiment** (paper future work §V, CPU matrix engines):
//! how much do AMX/SME/MMA-class engines raise the GPU offload threshold?
//!
//! "Building on this work, we aim to analyse the impact of CPU matrix
//! engines on the offload threshold." — this binary answers the question
//! in-model by re-deriving the square-GEMM Transfer-Once thresholds with
//! each engine class grafted onto each system's CPU.
//!
//! ```text
//! cargo run -p blob-bench --release --bin ext_matrix_engine
//! ```

use blob_analysis::Table;
use blob_bench::{sweep, threshold_param};
use blob_core::problem::{GemmProblem, Problem};
use blob_sim::{presets, with_matrix_engine, MatrixEngine, Offload, Precision, SystemModel};

fn threshold(sys: &SystemModel, precision: Precision, iters: u32) -> String {
    let s = sweep(sys, Problem::Gemm(GemmProblem::Square), precision, iters);
    threshold_param(
        Problem::Gemm(GemmProblem::Square),
        s.threshold(Offload::TransferOnce),
    )
    .map(|v| v.to_string())
    .unwrap_or_else(|| "—".into())
}

fn main() {
    let engines: [(&str, Option<MatrixEngine>); 4] = [
        ("baseline (SIMD only)", None),
        ("MMA-class (2x/2x)", Some(MatrixEngine::mma_class())),
        ("SME-class (4x/2x)", Some(MatrixEngine::sme_class())),
        ("AMX-class (8x/1x)", Some(MatrixEngine::amx_class())),
    ];

    for iters in [8u32, 128] {
        let mut table = Table::new(
            format!("Square GEMM Transfer-Once offload threshold (S : D), {iters} iterations"),
            &["CPU engine", "DAWN", "LUMI", "Isambard-AI"],
        );
        for (name, engine) in &engines {
            let mut row = vec![name.to_string()];
            for base in [presets::dawn(), presets::lumi(), presets::isambard_ai()] {
                let sys = match engine {
                    Some(e) => with_matrix_engine(base, *e),
                    None => base,
                };
                row.push(format!(
                    "{} : {}",
                    threshold(&sys, Precision::F32, iters),
                    threshold(&sys, Precision::F64, iters)
                ));
            }
            table.push_row(row);
        }
        println!("{}", table.render());
    }

    println!("Expected shape: every engine raises the SGEMM threshold (the CPU");
    println!("holds on to larger problems); AMX-class leaves DGEMM thresholds");
    println!("unchanged (no FP64 tiles), while SME/MMA-class raise both. On the");
    println!("GH200 the GPU's margin is so large that even a 4x CPU only nudges");
    println!("the threshold — the SoC conclusion of the paper survives matrix");
    println!("engines.");
}
