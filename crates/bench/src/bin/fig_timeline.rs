//! **Supplementary figure**: execution timelines of the three offload
//! strategies — the visual explanation of §III-B2 and of every
//! Transfer-Always column in Tables III–VI.
//!
//! For one representative GEMM on each system, renders a Gantt lane per
//! strategy (H2D / kernel / D2H / USM phases) plus a per-phase breakdown.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig_timeline
//! ```

use blob_analysis::timeline::timeline_svg;
use blob_bench::results_dir;
use blob_sim::{gpu_trace, phase_totals, presets, BlasCall, Offload, Precision, TraceEvent};

fn main() {
    let call = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
    let iters = 8;
    for sys in presets::evaluation_systems() {
        let lanes: Vec<(String, Vec<TraceEvent>)> = Offload::ALL
            .iter()
            .map(|&o| {
                (
                    format!("Transfer-{}", o.label()),
                    gpu_trace(&sys, &call, iters, o).expect("evaluation systems model a GPU"),
                )
            })
            .collect();

        println!("{} — SGEMM 1024^3 x {iters} iterations:", sys.name);
        for (name, events) in &lanes {
            let total = events.last().map(|e| e.end).unwrap_or(0.0);
            let breakdown: Vec<String> = phase_totals(events)
                .iter()
                .map(|(p, t)| format!("{} {:.0}%", p.label(), t / total * 100.0))
                .collect();
            println!(
                "  {:<16} {:>9.1} us  [{}]",
                name,
                total * 1e6,
                breakdown.join(", ")
            );
        }
        let svg = timeline_svg(
            &format!(
                "Offload timelines — {} (SGEMM 1024^3, {iters} iters)",
                sys.name
            ),
            &lanes,
        );
        let path = results_dir().join(format!(
            "fig_timeline_{}.svg",
            sys.name.to_lowercase().replace([' ', '-'], "_")
        ));
        if let Some(p) = path.parent() {
            std::fs::create_dir_all(p).ok();
        }
        std::fs::write(&path, svg).expect("write timeline SVG");
        println!("  wrote {}\n", path.display());
    }
    println!("Reading: on PCIe systems Transfer-Always is mostly orange/red (copies);");
    println!("on the GH200 every lane is almost solid blue (kernel) — the transfer");
    println!("amortisation the offload threshold measures, drawn to scale.");
}
