//! Regenerates **Table IV**: square SGEMV:DGEMV (M=N) GPU offload
//! thresholds for each data transfer type and HPC system.
//!
//! ```text
//! cargo run -p blob-bench --release --bin table4
//! ```

use blob_bench::threshold_table;
use blob_core::problem::{GemvProblem, Problem};
use blob_sim::presets;

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];
    let refs: Vec<&_> = systems.iter().collect();
    let table = threshold_table(
        "Table IV — Square SGEMV:DGEMV (M=N) GPU offload thresholds",
        &refs,
        Problem::Gemv(GemvProblem::Square),
    );
    println!("{}", table.render());
    println!("Paper reference (SGEMV:DGEMV):");
    println!("  all systems: no threshold at 1 iteration; Transfer-Always never yields one");
    println!("  DAWN        Once 4089:3840 -> 4081:3321 (static-high) | USM similar");
    println!("  LUMI        Once 952:1197 -> 465:545 (decreasing)     | USM 2129:1885 -> 754:909");
    println!("  Isambard-AI Once 256:256 (static)                     | USM 256:255 -> 256:249");
}
