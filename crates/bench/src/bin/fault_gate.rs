//! `fault_gate` — proves the disabled fault plane is (near-)free.
//!
//! The fault plane ships enabled in every build: `fault::point` calls sit
//! on the serve request path, the sweep runner's per-size loop, and the
//! thread pool's per-job loop. The zero-cost claim is that with no plan
//! installed a point is one relaxed atomic load, so even the most
//! overhead-sensitive gated kernel shape (`gemm_par4_64` in `perf_gate`)
//! cannot lose 1% to it.
//!
//! The gate measures, with no plan installed:
//!
//! 1. the per-call cost of a disabled `fault::point` (hot loop, min over
//!    repetitions — interference only adds time), and
//! 2. the `gemm_par4_64` per-call latency, the same statistic `perf_gate`
//!    gates on,
//!
//! and fails unless [`POINTS_PER_CALL`] disabled points cost **< 1%** of
//! one small-GEMM call. [`POINTS_PER_CALL`] is a deliberate over-estimate
//! of how many points one kernel call can traverse (the pool hits one per
//! job, i.e. per worker), so the bound holds with a wide margin on the
//! real layout. Results land in `results/fault_gate.csv`.
//!
//! ```text
//! cargo run --release -p blob-bench --bin fault_gate
//! ```

use blob_bench::microbench::{black_box, measure_latency};
use blob_bench::results_dir;
use blob_core::fault;
use std::process::ExitCode;
use std::time::Instant;

/// Worker-thread count of the reference GEMM (matches `perf_gate`).
const THREADS: usize = 4;

/// Side of the reference GEMM (`gemm_par4_64`, the shape most sensitive
/// to per-call overhead).
const DIM: usize = 64;

/// Deliberately pessimistic points-per-kernel-call multiplier: the real
/// hot path traverses ~[`THREADS`] (one `pool.worker` point per job).
const POINTS_PER_CALL: f64 = 64.0;

/// Overhead budget, percent of one `gemm_par4_64` call.
const BUDGET_PCT: f64 = 1.0;

/// Calls per timed block of the point microbenchmark. Large enough that
/// the `Instant` pair around the block is amortised to nothing.
const BLOCK: u64 = 4_000_000;

/// Repetitions; the statistic is the minimum (noise only adds time).
const REPS: usize = 5;

/// Nanoseconds per disabled `fault::point` call, min over [`REPS`] blocks.
fn measure_point_ns() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let mut hits = 0u64;
        for _ in 0..BLOCK {
            if fault::point(fault::sites::RUNNER_SIZE).is_err() {
                hits += 1;
            }
        }
        black_box(&hits);
        assert_eq!(hits, 0, "no plan is installed; nothing may fire");
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / BLOCK as f64);
    }
    best
}

/// Per-call latency of `gemm_par4_64` in nanoseconds (median, min over
/// [`REPS`] reps — the `perf_gate` statistic).
fn measure_gemm_ns() -> f64 {
    let a = vec![0.5f64; DIM * DIM];
    let b = vec![0.25f64; DIM * DIM];
    let mut c = vec![0.0f64; DIM * DIM];
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let stats = measure_latency(10, 41, || {
            let _ = blob_blas::gemm_parallel(
                THREADS, DIM, DIM, DIM, 1.0, &a, DIM, &b, DIM, 0.0, &mut c, DIM,
            );
            black_box(&c);
        });
        best = best.min(stats.median * 1e9);
    }
    best
}

fn main() -> ExitCode {
    // The gate's premise is the *disabled* path; refuse to measure noise.
    if fault::active() {
        eprintln!("fault_gate: a fault plan is installed (GPU_BLOB_FAULTS?) — unset it first");
        return ExitCode::from(2);
    }

    println!("fault_gate: measuring the disabled fault plane");
    let point_ns = measure_point_ns();
    println!(
        "  disabled fault::point   {point_ns:>10.3} ns/call (min of {REPS} blocks of {BLOCK})"
    );
    let gemm_ns = measure_gemm_ns();
    println!("  gemm_par4_64            {:>10.1} µs/call", gemm_ns / 1e3);

    let overhead_pct = 100.0 * (POINTS_PER_CALL * point_ns) / gemm_ns;
    println!(
        "  {POINTS_PER_CALL:.0} points per call -> {overhead_pct:.4}% of one gemm_par4_64 (budget {BUDGET_PCT}%)"
    );

    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("fault_gate.csv");
    let csv = format!(
        "point_ns,gemm_par4_64_ns,points_per_call,overhead_pct,budget_pct\n{point_ns:.3},{gemm_ns:.1},{POINTS_PER_CALL:.0},{overhead_pct:.4},{BUDGET_PCT}\n"
    );
    if let Err(e) = blob_core::atomicio::write_atomic(&path, csv.as_bytes()) {
        eprintln!("fault_gate: writing {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }

    if overhead_pct < BUDGET_PCT {
        println!("fault_gate: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("fault_gate: FAILED — disabled fault points are not free");
        ExitCode::FAILURE
    }
}
