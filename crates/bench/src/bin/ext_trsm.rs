//! **Extension experiment** (related work §II, Li et al.): the TRSM
//! CPU-vs-GPU picture — "for small vector sizes the CPUs were quicker than
//! the GPUs (for larger vector sizes, the GPUs were again faster)" — and
//! the paper's critique that the comparison "did not include the
//! critically important data transfer time".
//!
//! This binary reproduces both: the resident-data crossover Li et al.
//! measured, and how far the crossover moves once transfers are priced in.
//!
//! ```text
//! cargo run -p blob-bench --release --bin ext_trsm
//! ```

use blob_analysis::Table;
use blob_sim::{presets, Offload, Precision, SystemModel, TrsmCall};

/// First RHS count n from which the GPU wins for a fixed triangle size m.
fn crossover(sys: &SystemModel, m: usize, with_transfers: bool, iters: u32) -> Option<usize> {
    for n in 1..=4096usize {
        let c = TrsmCall::new(m, n, Precision::F64);
        let gpu = if with_transfers {
            sys.gpu_trsm_seconds(&c, iters, Offload::TransferOnce)?
        } else {
            sys.gpu_trsm_resident_seconds(&c, iters)?
        };
        if gpu < sys.cpu_trsm_seconds(&c, iters) {
            return Some(n);
        }
    }
    None
}

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];

    let mut table = Table::new(
        "DTRSM crossover: first RHS count n where the GPU wins (triangle m = 2048)",
        &[
            "System",
            "resident data (Li et al.)",
            "with transfers, 1 iter",
            "with transfers, 32 iters",
        ],
    );
    for sys in &systems {
        let f = |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| "—".into());
        table.push_row(vec![
            sys.name.to_string(),
            f(crossover(sys, 2048, false, 1)),
            f(crossover(sys, 2048, true, 1)),
            f(crossover(sys, 2048, true, 32)),
        ]);
    }
    println!("{}", table.render());

    // spell out the methodology critique with concrete numbers on DAWN
    let sys = presets::dawn();
    let c = TrsmCall::new(2048, 256, Precision::F64);
    let cpu = sys.cpu_trsm_seconds(&c, 1);
    let resident = sys.gpu_trsm_resident_seconds(&c, 1).unwrap();
    let with = sys.gpu_trsm_seconds(&c, 1, Offload::TransferOnce).unwrap();
    println!("DAWN, DTRSM 2048x256, 1 iteration:");
    println!("  CPU                      {:>9.2} ms", cpu * 1e3);
    println!(
        "  GPU, data resident       {:>9.2} ms  <- the Li et al. comparison",
        resident * 1e3
    );
    println!(
        "  GPU, transfers included  {:>9.2} ms  <- what an application pays",
        with * 1e3
    );
    println!();
    println!("Reproduced: the small-n CPU / large-n GPU crossover exists on every");
    println!("system for resident data, and pricing the transfers (the paper's");
    println!("critique of Li et al.) pushes it to substantially more right-hand");
    println!("sides on PCIe systems — while the GH200 barely notices.");
}
