//! Regenerates **Fig 2**: square SGEMM performance (1 iteration) on DAWN —
//! the oneMKL CPU performance cliff at {629, 629, 629} and the GPU curves
//! that cross it.
//!
//! Writes `results/fig2_dawn_sgemm_1iter.svg` and prints an ASCII preview.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig2
//! ```

use blob_analysis::{ascii_chart, write_svg, Series};
use blob_bench::{results_dir, sweep};
use blob_core::problem::{GemmProblem, Problem};
use blob_sim::{presets, Offload, Precision};

fn main() {
    let sys = presets::dawn();
    let s = sweep(&sys, Problem::Gemm(GemmProblem::Square), Precision::F32, 1);
    let series = vec![
        Series::from_usize("CPU (oneMKL, 48T)", &s.cpu_series()),
        Series::from_usize("GPU Transfer-Once", &s.gpu_series(Offload::TransferOnce)),
        Series::from_usize(
            "GPU Transfer-Always",
            &s.gpu_series(Offload::TransferAlways),
        ),
        Series::from_usize("GPU USM", &s.gpu_series(Offload::Unified)),
    ];
    let title = "Fig 2 — Square SGEMM performance (1 iteration) on DAWN";
    println!("{}", ascii_chart(title, &series, 100, 24));

    // Quantify the cliff the paper highlights.
    let g = |p: usize| {
        s.records
            .iter()
            .find(|r| r.param == p)
            .map(|r| r.cpu_gflops)
            .unwrap_or(0.0)
    };
    println!("CPU GFLOP/s at 628: {:.0}", g(628));
    println!(
        "CPU GFLOP/s at 629: {:.0}  (the oneMKL heuristic cliff)",
        g(629)
    );
    println!("CPU GFLOP/s at 3500: {:.0} (recovered)", g(3500));
    println!(
        "Threshold (Transfer-Once): {:?}",
        s.threshold(Offload::TransferOnce)
    );

    let path = results_dir().join("fig2_dawn_sgemm_1iter.svg");
    write_svg(&path, title, "M = N = K", "GFLOP/s", &series).expect("write SVG");
    println!("wrote {}", path.display());
}
