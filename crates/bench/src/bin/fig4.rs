//! Regenerates **Fig 4**: square DGEMV performance (1 iteration) on all
//! three systems.
//!
//! The paper's observations at one iteration:
//! - on DAWN and Isambard-AI there is a *considerable interior range* where
//!   the GPU outperforms the CPU (caused by CPU performance drops), yet no
//!   offload threshold is produced;
//! - on LUMI the CPU always outperforms the GPU, by a narrowing margin.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig4
//! ```

use blob_analysis::{ascii_chart, write_svg, Series};
use blob_bench::{results_dir, sweep};
use blob_core::problem::{GemvProblem, Problem};
use blob_sim::{presets, Offload, Precision};

fn main() {
    for sys in [presets::dawn(), presets::lumi(), presets::isambard_ai()] {
        let s = sweep(&sys, Problem::Gemv(GemvProblem::Square), Precision::F64, 1);
        let series = vec![
            Series::from_usize("CPU", &s.cpu_series()),
            Series::from_usize("GPU Transfer-Once", &s.gpu_series(Offload::TransferOnce)),
            Series::from_usize("GPU USM", &s.gpu_series(Offload::Unified)),
        ];
        let title = format!(
            "Fig 4 — Square DGEMV performance (1 iteration) on {}",
            sys.name
        );
        println!("{}", ascii_chart(&title, &series, 100, 18));
        println!(
            "Offload threshold (Once): {:?} — expected None at 1 iteration",
            s.threshold(Offload::TransferOnce)
        );
        // count sizes where the GPU wins despite the absent threshold
        let gpu_wins = s
            .records
            .iter()
            .filter(|r| {
                r.gpu_sample(Offload::TransferOnce)
                    .map(|g| g.seconds < r.cpu_seconds)
                    .unwrap_or(false)
            })
            .count();
        println!(
            "sizes where the GPU outperforms the CPU anyway: {gpu_wins} of {}\n",
            s.records.len()
        );
        let path = results_dir().join(format!(
            "fig4_dgemv_1iter_{}.svg",
            sys.name.to_lowercase().replace([' ', '-'], "_")
        ));
        write_svg(&path, &title, "M = N", "GFLOP/s", &series).expect("write SVG");
        println!("wrote {}\n", path.display());
    }
}
