//! Roofline plots for the three modelled systems — the visual form of the
//! paper's Arithmetic Intensity analysis (§IV-C): each system's CPU and
//! GPU rooflines with the benchmark's kernels pinned at their intensities.
//!
//! ```text
//! cargo run -p blob-bench --release --bin roofline
//! ```

use blob_analysis::roofline::{roofline_svg, KernelPoint, Roofline};
use blob_bench::results_dir;
use blob_sim::{presets, BlasCall, Precision};

fn main() {
    let kernels = vec![
        KernelPoint {
            name: "SGEMV 4096".into(),
            intensity: BlasCall::gemv(Precision::F32, 4096, 4096).arithmetic_intensity(),
        },
        KernelPoint {
            name: "SGEMM 128".into(),
            intensity: BlasCall::gemm(Precision::F32, 128, 128, 128).arithmetic_intensity(),
        },
        KernelPoint {
            name: "SGEMM 4096".into(),
            intensity: BlasCall::gemm(Precision::F32, 4096, 4096, 4096).arithmetic_intensity(),
        },
        KernelPoint {
            name: "SGEMM {32,32,4096}".into(),
            intensity: BlasCall::gemm(Precision::F32, 32, 32, 4096).arithmetic_intensity(),
        },
    ];

    for sys in presets::evaluation_systems() {
        let cpu = Roofline {
            peak_gflops: sys.cpu.peak_gflops(Precision::F32, sys.cpu_lib.threads),
            bandwidth_gbs: sys.cpu.dram_gbs,
        };
        let gpu_model = sys.gpu.as_ref().expect("evaluation systems model a GPU");
        let gpu = Roofline {
            peak_gflops: gpu_model.peak_gflops(Precision::F32),
            bandwidth_gbs: gpu_model.hbm_gbs,
        };
        // the "effective" GPU roofline seen from the host at 1 iteration:
        // bandwidth limited by the interconnect instead of HBM
        let link = sys.link.as_ref().expect("link");
        let gpu_via_link = Roofline {
            peak_gflops: gpu.peak_gflops,
            bandwidth_gbs: link.h2d_gbs,
        };

        println!("{}:", sys.name);
        println!(
            "  CPU balance {:>6.1} flops/byte | GPU balance {:>6.1} | GPU-behind-link balance {:>7.1}",
            cpu.balance(),
            gpu.balance(),
            gpu_via_link.balance()
        );
        for k in &kernels {
            println!(
                "  {:<20} AI {:>7.2} -> CPU {:>8.0} GF | GPU {:>8.0} GF | via link {:>8.0} GF",
                k.name,
                k.intensity,
                cpu.attainable(k.intensity),
                gpu.attainable(k.intensity),
                gpu_via_link.attainable(k.intensity),
            );
        }
        println!();

        let svg = roofline_svg(
            &format!("Rooflines — {}", sys.name),
            &[
                (format!("{} CPU", sys.name), cpu),
                (format!("{} GPU (resident)", sys.name), gpu),
                (format!("{} GPU via {}", sys.name, link.name), gpu_via_link),
            ],
            &kernels,
        );
        let path = results_dir().join(format!(
            "roofline_{}.svg",
            sys.name.to_lowercase().replace([' ', '-'], "_")
        ));
        if let Some(p) = path.parent() {
            std::fs::create_dir_all(p).ok();
        }
        std::fs::write(&path, svg).expect("write roofline SVG");
        println!("wrote {}\n", path.display());
    }

    println!("Reading: GEMV's ~0.25 flops/byte sits under every roofline's ridge —");
    println!("bandwidth always binds, so the winner is whoever streams faster, which");
    println!("is why the GH200's 3.3 TB/s HBM + 360 GB/s C2C flips the GEMV mantra");
    println!("while PCIe systems cannot (their link-limited roofline at AI 0.25 is");
    println!("a tenth of the CPU's).");
}
