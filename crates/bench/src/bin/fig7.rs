//! Regenerates **Fig 7** (Appendix A): DAWN GPU square SGEMM performance
//! (32 iterations) using implicit vs explicit hardware scaling of the Intel
//! Max 1550's two tiles.
//!
//! The paper's finding: implicit scaling (driver spreads work across both
//! tiles) yields much lower and less-consistent performance than explicit
//! scaling to one tile, despite twice the compute — cross-tile
//! communication dominates.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig7
//! ```

use blob_analysis::{ascii_chart, write_svg, Series};
use blob_bench::{results_dir, sweep};
use blob_core::problem::{GemmProblem, Problem};
use blob_sim::{presets, Offload, Precision};

fn main() {
    let explicit = sweep(
        &presets::dawn(),
        Problem::Gemm(GemmProblem::Square),
        Precision::F32,
        32,
    );
    let implicit = sweep(
        &presets::dawn_implicit_scaling(),
        Problem::Gemm(GemmProblem::Square),
        Precision::F32,
        32,
    );
    let series = vec![
        Series::from_usize(
            "Explicit scaling (one tile)",
            &explicit.gpu_series(Offload::TransferOnce),
        ),
        Series::from_usize(
            "Implicit scaling (both tiles)",
            &implicit.gpu_series(Offload::TransferOnce),
        ),
    ];
    let title = "Fig 7 — DAWN GPU SGEMM (32 iterations): implicit vs explicit scaling";
    println!("{}", ascii_chart(title, &series, 100, 20));

    let at = |s: &Series, x: f64| {
        s.points
            .iter()
            .find(|p| p.0 >= x)
            .map(|p| p.1)
            .unwrap_or(0.0)
    };
    for size in [1024.0, 2048.0, 4096.0] {
        let e = at(&series[0], size);
        let i = at(&series[1], size);
        println!(
            "size {size:>5}: explicit {e:>8.0} GFLOP/s | implicit {i:>8.0} GFLOP/s ({:.2}x)",
            e / i
        );
    }
    // quantify the "less consistent" part: relative point-to-point jitter
    let jitter = |s: &Series| {
        let mut acc = 0.0;
        let mut n = 0;
        for w in s.points.windows(2) {
            if w[0].1 > 0.0 && w[0].0 > 1000.0 {
                acc += ((w[1].1 - w[0].1) / w[0].1).abs();
                n += 1;
            }
        }
        acc / n.max(1) as f64
    };
    println!(
        "mean point-to-point variation (sizes > 1000): explicit {:.3} | implicit {:.3}",
        jitter(&series[0]),
        jitter(&series[1])
    );

    let path = results_dir().join("fig7_dawn_implicit_vs_explicit.svg");
    write_svg(&path, title, "M = N = K", "GFLOP/s", &series).expect("write SVG");
    println!("wrote {}", path.display());
}
