//! Regenerates **Fig 5**: square SGEMV performance (128 iterations) on
//! Isambard-AI and DAWN.
//!
//! The paper's observations: Isambard-AI's Transfer-Once/USM curves are
//! steep from small sizes (NVLink-C2C feeds the H100's HBM), with a CPU
//! drop at ~{256, 256}; DAWN's GPU curves are shallow and slowly rising
//! (PCIe-bound), so its thresholds sit near the top of the sweep.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig5
//! ```

use blob_analysis::{ascii_chart, write_svg, Series};
use blob_bench::{results_dir, sweep};
use blob_core::problem::{GemvProblem, Problem};
use blob_sim::{presets, Offload, Precision};

fn main() {
    for sys in [presets::isambard_ai(), presets::dawn()] {
        let s = sweep(
            &sys,
            Problem::Gemv(GemvProblem::Square),
            Precision::F32,
            128,
        );
        let series = vec![
            Series::from_usize("CPU", &s.cpu_series()),
            Series::from_usize("GPU Transfer-Once", &s.gpu_series(Offload::TransferOnce)),
            Series::from_usize(
                "GPU Transfer-Always",
                &s.gpu_series(Offload::TransferAlways),
            ),
            Series::from_usize("GPU USM", &s.gpu_series(Offload::Unified)),
        ];
        let title = format!(
            "Fig 5 — Square SGEMV performance (128 iterations) on {}",
            sys.name
        );
        println!("{}", ascii_chart(&title, &series, 100, 18));
        println!(
            "thresholds: Once {:?} | Always {:?} | USM {:?}\n",
            s.threshold(Offload::TransferOnce),
            s.threshold(Offload::TransferAlways),
            s.threshold(Offload::Unified),
        );
        let path = results_dir().join(format!(
            "fig5_sgemv_128iter_{}.svg",
            sys.name.to_lowercase().replace([' ', '-'], "_")
        ));
        write_svg(&path, &title, "M = N", "GFLOP/s", &series).expect("write SVG");
        println!("wrote {}\n", path.display());
    }
}
