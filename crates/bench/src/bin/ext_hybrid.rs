//! **Extension experiment** (related work §II, MAGMA): when does splitting
//! one GEMM across CPU *and* GPU beat the better single device — and what
//! do next-generation unified-memory APUs (MI300A, from the paper's
//! introduction) do to the whole offload question?
//!
//! ```text
//! cargo run -p blob-bench --release --bin ext_hybrid
//! ```

use blob_analysis::Table;
use blob_sim::{best_split, presets, BlasCall, Offload, Precision};

fn main() {
    // --- MAGMA-style hybrid splits ------------------------------------------
    let mut table = Table::new(
        "Best CPU+GPU split for square SGEMM (Transfer-Once, 32 iterations)",
        &[
            "Size",
            "System",
            "GPU share",
            "CPU-only",
            "GPU-only",
            "Hybrid",
            "vs best single",
        ],
    );
    for sys in [
        presets::dawn(),
        presets::lumi(),
        presets::isambard_ai(),
        presets::a100_workstation(),
    ] {
        for s in [512usize, 1024, 4096] {
            let call = BlasCall::gemm(Precision::F32, s, s, s);
            let plan = best_split(&sys, &call, 32, Offload::TransferOnce, 64).unwrap();
            table.push_row(vec![
                s.to_string(),
                sys.name.to_string(),
                format!("{:.0}%", plan.gpu_fraction * 100.0),
                format!("{:.2} ms", plan.cpu_seconds * 1e3),
                format!("{:.2} ms", plan.gpu_seconds * 1e3),
                format!("{:.2} ms", plan.hybrid_seconds * 1e3),
                format!("{:.2}x", plan.speedup_vs_best_single),
            ]);
        }
    }
    println!("{}", table.render());
    println!("MAGMA's claim reproduced in-model: hybrid execution pays most where the");
    println!("devices are balanced (near the offload threshold) and fades to ~1x where");
    println!("one device dominates.\n");

    // --- The MI300A limit -----------------------------------------------------
    println!("Unified-memory APU (MI300A-class) square thresholds vs the paper's systems:");
    let mut t2 = Table::new(
        "Square SGEMM / SGEMV Transfer-Once thresholds at 1 and 8 iterations",
        &["System", "GEMM i=1", "GEMM i=8", "GEMV i=1", "GEMV i=8"],
    );
    for sys in [
        presets::a100_workstation(),
        presets::dawn(),
        presets::isambard_ai(),
        presets::mi300a(),
    ] {
        let thr = |gemv: bool, iters: u32| -> String {
            let mut last = None;
            let mut prev = false;
            let max = 4096usize;
            for s in 1..=max {
                let call = if gemv {
                    BlasCall::gemv(Precision::F32, s, s)
                } else {
                    BlasCall::gemm(Precision::F32, s, s, s)
                };
                let w = sys.cpu_seconds(&call, iters)
                    < sys
                        .gpu_seconds(&call, iters, Offload::TransferOnce)
                        .unwrap();
                if w && (prev || s == 1) {
                    last = Some(s);
                }
                prev = w;
            }
            match last {
                None => "1".into(),
                Some(s) if s < max => (s + 1).to_string(),
                Some(_) => "—".into(),
            }
        };
        t2.push_row(vec![
            sys.name.to_string(),
            thr(false, 1),
            thr(false, 8),
            thr(true, 1),
            thr(true, 8),
        ]);
    }
    println!("{}", t2.render());
    println!("Reading, down the rows: the weaker the link, the bigger the thresholds;");
    println!("the GH200 shrinks them to tens; a unified-memory APU erases the offload");
    println!("question almost entirely — the endpoint of the SoC trend the paper's");
    println!("conclusion predicts.");
}
