//! Load generator for `blob-serve`: starts the service in-process, hammers
//! `POST /advise` from keep-alive client threads, and reports throughput
//! and tail latency. `--min-rps` turns the run into a pass/fail gate, which
//! is how `ci.sh` asserts the loopback throughput floor.
//!
//! ```text
//! cargo run --release -p blob-bench --bin serve_load -- \
//!     --clients 4 --requests 2000 --min-rps 1000
//! ```
//!
//! Results land in `results/serve_load.csv` (one row per run).

use blob_serve::http::Limits;
use blob_serve::metrics::Histogram;
use blob_serve::{Config, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LoadArgs {
    clients: usize,
    requests: usize,
    server_threads: usize,
    min_rps: f64,
}

impl Default for LoadArgs {
    fn default() -> Self {
        Self {
            clients: 4,
            requests: 2000,
            server_threads: 4,
            min_rps: 0.0,
        }
    }
}

fn parse_args() -> LoadArgs {
    let mut args = LoadArgs::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
                .as_str()
        };
        match flag.as_str() {
            "--clients" => args.clients = value("--clients").parse().expect("--clients"),
            "--requests" => args.requests = value("--requests").parse().expect("--requests"),
            "--server-threads" => {
                args.server_threads = value("--server-threads").parse().expect("--server-threads")
            }
            "--min-rps" => args.min_rps = value("--min-rps").parse().expect("--min-rps"),
            other => panic!("unknown flag {other} (see source header for usage)"),
        }
    }
    args
}

/// Reads one HTTP response off a keep-alive stream; returns the status.
fn read_response(s: &mut TcpStream, buf: &mut Vec<u8>) -> u16 {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(at) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break at + 4;
        }
        let n = s.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let body_len: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length")
        .trim()
        .parse()
        .expect("content-length value");
    while buf.len() < head_end + body_len {
        let n = s.read(&mut chunk).expect("read body");
        assert!(n > 0, "server closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    buf.drain(..head_end + body_len);
    status
}

fn main() {
    let args = parse_args();
    let server = Server::start(Config {
        addr: "127.0.0.1:0".to_string(),
        threads: args.server_threads,
        cache_entries: 256,
        cache_shards: 8,
        limits: Limits {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            ..Limits::default()
        },
        allow_shutdown: false,
        ..Config::default()
    })
    .expect("start server");
    let addr = server.local_addr();
    println!(
        "serve_load: {} clients x {} requests against {} ({} server threads)",
        args.clients, args.requests, addr, args.server_threads
    );

    let latency = Arc::new(Histogram::new());
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let latency = Arc::clone(&latency);
            let requests = args.requests;
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).expect("connect");
                s.set_nodelay(true).ok();
                let mut buf = Vec::new();
                let mut errors = 0usize;
                for i in 0..requests {
                    // rotate dimensions so responses vary but stay cheap
                    let m = 64 + ((c * requests + i) % 64);
                    let body = format!(
                        r#"{{"system":"isambard-ai","op":"gemm","m":{m},"n":{m},"k":{m},"precision":"f32","iterations":8}}"#
                    );
                    let req = format!(
                        "POST /advise HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let t0 = Instant::now();
                    s.write_all(req.as_bytes()).expect("write request");
                    let status = read_response(&mut s, &mut buf);
                    latency.record_us(t0.elapsed().as_micros() as u64);
                    if status != 200 {
                        errors += 1;
                    }
                }
                errors
            })
        })
        .collect();
    let errors: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let elapsed = started.elapsed().as_secs_f64();

    let total = args.clients * args.requests;
    let rps = total as f64 / elapsed;
    let (p50, p90, p99) = (
        latency.quantile_us(0.50),
        latency.quantile_us(0.90),
        latency.quantile_us(0.99),
    );
    println!(
        "{total} requests in {elapsed:.3} s -> {rps:.0} req/s | mean {:.0} us, p50 {p50} us, p90 {p90} us, p99 {p99} us | {errors} errors",
        latency.mean_us()
    );

    let dir = blob_bench::results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("serve_load.csv");
    let mut csv = String::from(
        "clients,requests_per_client,server_threads,seconds,rps,mean_us,p50_us,p90_us,p99_us,errors\n",
    );
    csv.push_str(&format!(
        "{},{},{},{:.3},{:.0},{:.0},{p50},{p90},{p99},{errors}\n",
        args.clients,
        args.requests,
        args.server_threads,
        elapsed,
        rps,
        latency.mean_us()
    ));
    std::fs::write(&path, csv).expect("write csv");
    println!("wrote {}", path.display());

    server.shutdown();
    server.join();

    assert_eq!(errors, 0, "load run saw non-200 responses");
    if args.min_rps > 0.0 && rps < args.min_rps {
        eprintln!(
            "FAIL: {rps:.0} req/s is below the --min-rps {} floor",
            args.min_rps
        );
        std::process::exit(1);
    }
}
