//! Generates per-system markdown reports (`results/report_<system>_*.md`)
//! for the square GEMM and GEMV problem types — the human-readable summary
//! of what `all_experiments` measures.
//!
//! ```text
//! cargo run -p blob-bench --release --bin report
//! ```

use blob_analysis::markdown_report;
use blob_bench::results_dir;
use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_core::runner::{run_sweep, Sweep, SweepConfig};
use blob_sim::{presets, Precision};

fn main() {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    for sys in presets::evaluation_systems() {
        for (tag, problem) in [
            ("gemm", Problem::Gemm(GemmProblem::Square)),
            ("gemv", Problem::Gemv(GemvProblem::Square)),
        ] {
            let mut sweeps: Vec<Sweep> = Vec::new();
            for iters in SweepConfig::PAPER_ITERATIONS {
                for precision in Precision::ALL {
                    sweeps.push(run_sweep(
                        &sys,
                        problem,
                        precision,
                        &SweepConfig::paper(iters).with_step(2),
                    ));
                }
            }
            let md = markdown_report(
                &format!(
                    "{} — square {} offload profile",
                    sys.name,
                    tag.to_uppercase()
                ),
                &sweeps,
            );
            let path = dir.join(format!(
                "report_{}_{}.md",
                sys.name.to_lowercase().replace([' ', '-'], "_"),
                tag
            ));
            std::fs::write(&path, md).expect("write report");
            println!("wrote {}", path.display());
        }
    }
}
