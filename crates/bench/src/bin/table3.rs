//! Regenerates **Table III**: square SGEMM:DGEMM (M=N=K) GPU offload
//! thresholds for each data transfer type and HPC system.
//!
//! ```text
//! cargo run -p blob-bench --release --bin table3
//! ```

use blob_bench::threshold_table;
use blob_core::problem::{GemmProblem, Problem};
use blob_sim::presets;

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];
    let refs: Vec<&_> = systems.iter().collect();
    let table = threshold_table(
        "Table III — Square SGEMM:DGEMM (M=N=K) GPU offload thresholds",
        &refs,
        Problem::Gemm(GemmProblem::Square),
    );
    println!("{}", table.render());
    println!("Paper reference (SGEMM:DGEMM):");
    println!("  DAWN        Once 629:582 -> 514:361 | Always 629:582 -> 1265:1153 | USM 657:626 -> 412:377");
    println!(
        "  LUMI        Once 502:237 -> 2:2     | Always 441:234 -> 512:1009  | USM —:— -> 189:153"
    );
    println!("  Isambard-AI Once 26:26 (static)     | Always 26:26 (static)       | USM 196:411 -> 26:26");
}
