//! **Ablation**: how much of each system's offload-threshold profile is
//! hardware, and how much is *library heuristics*?
//!
//! The paper conjectures (§IV-A): "Without this drop, the one iteration
//! square GEMM offload thresholds on DAWN would have likely been much
//! higher". This binary tests that counterfactual — and two more — by
//! re-deriving thresholds with individual quirks removed:
//!
//! 1. DAWN without the oneMKL 629 cliff;
//! 2. LUMI with a (hypothetical) multithreaded AOCL GEMV;
//! 3. Isambard-AI's NVPL given ArmPL-style adaptive threading.
//!
//! ```text
//! cargo run -p blob-bench --release --bin ablation_quirks
//! ```

use blob_bench::{sweep, threshold_param};
use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_sim::{presets, Offload, Precision, SystemModel};

fn gemm_threshold(sys: &SystemModel, iters: u32) -> String {
    let p = Problem::Gemm(GemmProblem::Square);
    threshold_param(
        p,
        sweep(sys, p, Precision::F32, iters).threshold(Offload::TransferOnce),
    )
    .map(|v| v.to_string())
    .unwrap_or_else(|| "—".into())
}

fn gemv_threshold(sys: &SystemModel, iters: u32) -> String {
    let p = Problem::Gemv(GemvProblem::Square);
    threshold_param(
        p,
        sweep(sys, p, Precision::F32, iters).threshold(Offload::TransferOnce),
    )
    .map(|v| v.to_string())
    .unwrap_or_else(|| "—".into())
}

fn main() {
    // --- 1. DAWN without the 629 cliff --------------------------------------
    let dawn = presets::dawn();
    let mut dawn_no_cliff = presets::dawn();
    dawn_no_cliff
        .cpu_lib
        .quirks
        .retain(|q| !q.name.contains("629"));
    dawn_no_cliff.name = "DAWN (no 629 cliff)";
    println!("1. DAWN square SGEMM Transfer-Once threshold, with and without the oneMKL cliff:");
    for iters in [1u32, 8, 32] {
        println!(
            "   {iters:>3} iterations: with cliff {:>6} | without {:>6}",
            gemm_threshold(&dawn, iters),
            gemm_threshold(&dawn_no_cliff, iters)
        );
    }
    println!("   (paper's conjecture: without the drop the 1-iteration threshold");
    println!("    \"would have likely been much higher\" — confirmed in-model)\n");

    // --- 2. LUMI with a parallel-GEMV AOCL ----------------------------------
    let lumi = presets::lumi();
    let mut lumi_parallel_gemv = presets::lumi();
    lumi_parallel_gemv.cpu_lib.gemv_parallel = true;
    lumi_parallel_gemv.name = "LUMI (parallel GEMV)";
    println!("2. LUMI square SGEMV Transfer-Once threshold, serial vs multithreaded CPU GEMV:");
    for iters in [8u32, 32, 128] {
        println!(
            "   {iters:>3} iterations: AOCL serial {:>6} | hypothetical parallel {:>6}",
            gemv_threshold(&lumi, iters),
            gemv_threshold(&lumi_parallel_gemv, iters)
        );
    }
    println!("   (the entire LUMI GEMV-offload story is the serial-GEMV artefact —");
    println!("    give the CPU its socket bandwidth back and the thresholds vanish,");
    println!("    exactly what switching to OpenBLAS showed in Fig 6)\n");

    // --- 3. NVPL with adaptive threading ------------------------------------
    let isam = presets::isambard_ai();
    let mut isam_adaptive = presets::isambard_ai();
    isam_adaptive.cpu_lib.adaptive_threading = true;
    isam_adaptive.name = "Isambard-AI (adaptive NVPL)";
    println!(
        "3. Isambard-AI square SGEMM Transfer-Once threshold, NVPL-as-is vs ArmPL-style scaling:"
    );
    for iters in [1u32, 8] {
        println!(
            "   {iters:>3} iterations: all-threads-always {:>6} | adaptive {:>6}",
            gemm_threshold(&isam, iters),
            gemm_threshold(&isam_adaptive, iters)
        );
    }
    println!("   (adaptive threading helps exactly the sizes below the threshold,");
    println!("    so it can only move the threshold up — a little: on a GH200 the");
    println!("    GPU's advantage is structural, not heuristic)");
}
