//! `perf_gate` — latency-regression gate for the blas hot path.
//!
//! Measures spawn-overhead-sensitive kernel shapes (small parallel GEMMs,
//! a tall-skinny GEMV) with per-call latency timing — the min over
//! [`REPS`] repetitions of the per-rep median — and compares them against
//! the committed trajectory in `BENCH_blas.json` at the repo root.
//!
//! Modes:
//!
//! ```text
//! perf_gate                  # gate mode (ci.sh): fail if any gated shape
//!                            # regressed > tolerance vs the latest entry
//! perf_gate --record <id>    # measure and append a named entry to
//!                            # BENCH_blas.json (the trajectory file)
//! perf_gate --tolerance 20   # override the regression tolerance (percent)
//! ```
//!
//! Gated shapes are the small parallel GEMMs (≤ 256³) — the region where
//! the offload threshold lives and where per-call spawn overhead and
//! packing allocations distort timings the most. Larger shapes and the
//! GEMV are tracked in the file but do not fail the gate (their medians
//! move with machine load more than with code changes).
//!
//! A gated shape that fails its first comparison is re-measured up to
//! [`GATE_RETRIES`] more times — with a pause between attempts so a
//! host-steal burst can pass — and gated on the minimum across attempts:
//! the minimum is an upper bound on the code's true latency, so retries
//! strip scheduler noise without ever excusing a real regression.
//!
//! Every run also writes the full trajectory plus the current measurement
//! to `results/BENCH_blas.json` so tooling can diff a run against history
//! without touching the committed file.

use blob_bench::microbench::{black_box, measure_latency};
use blob_bench::results_dir;
use blob_core::wire::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Worker-thread count every parallel shape is measured at. Four threads
/// is enough to expose per-call dispatch overhead regardless of how many
/// cores the host really has.
const THREADS: usize = 4;

/// Default regression tolerance, percent (gate fails above this).
const DEFAULT_TOLERANCE_PCT: f64 = 20.0;

/// Extra re-measurements granted to a gated shape that fails its first
/// comparison. On a shared 1-vCPU container host CPU steal can double a
/// median; the minimum across attempts is still an upper bound on the
/// code's true latency, so retries can only strip noise — a real
/// regression stays over the line however often it is re-measured.
const GATE_RETRIES: usize = 4;

/// Pause before each re-measurement. Steal bursts on the shared host
/// last seconds, so back-to-back retries re-sample the same bad window;
/// spreading the attempts out gives each one a chance at a quiet host.
const GATE_RETRY_PAUSE: std::time::Duration = std::time::Duration::from_secs(3);

/// Independent repetitions of every shape's sample set. The reported
/// number is the **minimum of the per-rep medians**: interference on a
/// shared host only ever adds time, so the best rep is the closest
/// observable estimate of the code's true latency, and using it on both
/// sides (record and gate) keeps the 20% tolerance meaningful on noisy
/// 1-core CI containers where single-rep medians swing by 40%+.
const REPS: usize = 3;

/// What one measured shape runs.
enum Kind {
    /// Square parallel GEMM, `dim`³ at [`THREADS`] threads.
    GemmPar(usize),
    /// Square single-threaded blocked GEMM (context for the parallel rows).
    GemmSerial(usize),
    /// Tall-skinny parallel GEMV, `m × n` at [`THREADS`] threads.
    GemvPar(usize, usize),
}

struct Shape {
    name: &'static str,
    kind: Kind,
    warmup: usize,
    samples: usize,
    /// Gated shapes fail the run on regression; the rest are tracked only.
    gated: bool,
}

fn shapes() -> Vec<Shape> {
    vec![
        Shape {
            name: "gemm_par4_64",
            kind: Kind::GemmPar(64),
            warmup: 10,
            samples: 41,
            gated: true,
        },
        Shape {
            name: "gemm_par4_128",
            kind: Kind::GemmPar(128),
            warmup: 8,
            samples: 31,
            gated: true,
        },
        Shape {
            name: "gemm_par4_192",
            kind: Kind::GemmPar(192),
            warmup: 5,
            samples: 25,
            gated: true,
        },
        Shape {
            name: "gemm_par4_256",
            kind: Kind::GemmPar(256),
            warmup: 5,
            samples: 25,
            gated: true,
        },
        Shape {
            name: "gemm_par4_512",
            kind: Kind::GemmPar(512),
            warmup: 2,
            samples: 9,
            gated: false,
        },
        Shape {
            name: "gemm_serial_256",
            kind: Kind::GemmSerial(256),
            warmup: 5,
            samples: 15,
            gated: false,
        },
        Shape {
            name: "gemv_par4_8192x64",
            kind: Kind::GemvPar(8192, 64),
            warmup: 10,
            samples: 41,
            gated: false,
        },
    ]
}

/// Runs one shape [`REPS`] times and returns the minimum of the per-rep
/// median per-call latencies, in microseconds.
fn measure(shape: &Shape) -> f64 {
    (0..REPS)
        .map(|_| measure_rep(shape))
        .fold(f64::INFINITY, f64::min)
}

/// One repetition: warmup calls, then individually timed samples; the
/// rep's statistic is the median.
fn measure_rep(shape: &Shape) -> f64 {
    let stats = match shape.kind {
        Kind::GemmPar(d) => {
            let a = vec![0.5f64; d * d];
            let b = vec![0.25f64; d * d];
            let mut c = vec![0.0f64; d * d];
            measure_latency(shape.warmup, shape.samples, || {
                let _ =
                    blob_blas::gemm_parallel(THREADS, d, d, d, 1.0, &a, d, &b, d, 0.0, &mut c, d);
                black_box(&c);
            })
        }
        Kind::GemmSerial(d) => {
            let a = vec![0.5f64; d * d];
            let b = vec![0.25f64; d * d];
            let mut c = vec![0.0f64; d * d];
            measure_latency(shape.warmup, shape.samples, || {
                let _ = blob_blas::gemm_blocked(d, d, d, 1.0, &a, d, &b, d, 0.0, &mut c, d);
                black_box(&c);
            })
        }
        Kind::GemvPar(m, n) => {
            let a = vec![0.5f64; m * n];
            let x = vec![0.25f64; n];
            let mut y = vec![0.0f64; m];
            measure_latency(shape.warmup, shape.samples, || {
                let _ = blob_blas::gemv_parallel(THREADS, m, n, 1.0, &a, m, &x, 1, 0.0, &mut y, 1);
                black_box(&y);
            })
        }
    };
    stats.median * 1e6
}

/// The committed trajectory file lives at the repo root, next to ci.sh.
fn trajectory_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_blas.json")
}

/// One named entry of the trajectory: id plus shape-name → median µs.
struct Entry {
    id: String,
    shapes: Vec<(String, f64)>,
}

impl Entry {
    fn get(&self, name: &str) -> Option<f64> {
        self.shapes.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    fn set(&mut self, name: &str, us: f64) {
        if let Some(slot) = self.shapes.iter_mut().find(|(n, _)| n == name) {
            slot.1 = us;
        }
    }

    fn to_json(&self) -> Json {
        let mut shape_fields: Vec<(String, Json)> = Vec::new();
        for (name, us) in &self.shapes {
            // two decimals of a microsecond is below timer noise
            shape_fields.push((name.clone(), ((us * 100.0).round() / 100.0).into()));
        }
        Json::obj()
            .field("id", self.id.as_str())
            .field("shapes", Json::Obj(shape_fields))
            .build()
    }
}

fn parse_trajectory(text: &str) -> Result<Vec<Entry>, String> {
    let doc = Json::parse(text).map_err(|e| format!("BENCH_blas.json: {e:?}"))?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("BENCH_blas.json: missing `entries` array")?;
    let mut out = Vec::new();
    for e in entries {
        let id = e
            .get("id")
            .and_then(Json::as_str)
            .ok_or("entry missing `id`")?
            .to_string();
        let shapes = e
            .get("shapes")
            .and_then(Json::as_obj)
            .ok_or("entry missing `shapes`")?;
        let mut pairs = Vec::new();
        for (name, v) in shapes {
            let us = v.as_f64().ok_or_else(|| format!("{name}: not a number"))?;
            pairs.push((name.clone(), us));
        }
        out.push(Entry { id, shapes: pairs });
    }
    Ok(out)
}

fn trajectory_json(entries: &[Entry]) -> String {
    let items: Vec<Json> = entries.iter().map(Entry::to_json).collect();
    Json::obj()
        .field("bench", "blas_hot_path_latency")
        .field("unit", "min_of_rep_medians_microseconds_per_call")
        .field("threads", THREADS as u64)
        .field("entries", Json::Arr(items))
        .build()
        .encode_pretty()
        + "\n"
}

struct Args {
    record: Option<String>,
    tolerance_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        record: None,
        tolerance_pct: DEFAULT_TOLERANCE_PCT,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--record" => {
                args.record = Some(it.next().ok_or("--record needs an entry id")?);
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a percentage")?;
                args.tolerance_pct = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad tolerance `{v}`"))?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            eprintln!("usage: perf_gate [--record <id>] [--tolerance <pct>]");
            return ExitCode::from(2);
        }
    };

    let path = trajectory_path();
    let mut entries = match std::fs::read_to_string(&path) {
        Ok(text) => match parse_trajectory(&text) {
            Ok(e) => e,
            Err(msg) => {
                eprintln!("perf_gate: {msg}");
                return ExitCode::from(2);
            }
        },
        Err(_) => Vec::new(),
    };

    println!("perf_gate: measuring blas hot-path latency ({THREADS} threads)");
    let mut current = Entry {
        id: args.record.clone().unwrap_or_else(|| "current".to_string()),
        shapes: shapes()
            .iter()
            .map(|s| {
                let us = measure(s);
                println!("  {:<20} {us:>12.1} µs (min of {REPS} rep medians)", s.name);
                (s.name.to_string(), us)
            })
            .collect(),
    };

    // Context: speedup of this run against the oldest (seed) entry.
    if let Some(seed) = entries.first() {
        println!("vs `{}` (oldest entry):", seed.id);
        for (name, us) in &current.shapes {
            if let Some(base) = seed.get(name) {
                println!("  {name:<20} {:>11.2}x", base / us.max(1e-9));
            }
        }
    }

    if let Some(id) = &args.record {
        entries.retain(|e| &e.id != id);
        entries.push(Entry {
            id: id.clone(),
            shapes: current.shapes.clone(),
        });
        if let Err(e) = std::fs::write(&path, trajectory_json(&entries)) {
            eprintln!("perf_gate: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("recorded entry `{id}` to {}", path.display());
        return ExitCode::SUCCESS;
    }

    // Gate mode: compare gated shapes against the newest committed entry.
    let Some(reference) = entries.last() else {
        eprintln!(
            "perf_gate: no committed baseline at {} — run with --record first",
            path.display()
        );
        return ExitCode::from(2);
    };
    let factor = 1.0 + args.tolerance_pct / 100.0;
    let mut failed = false;
    println!(
        "gate: vs `{}`, tolerance {:.0}%:",
        reference.id, args.tolerance_pct
    );
    for s in shapes().iter().filter(|s| s.gated) {
        let Some(mut now) = current.get(s.name) else {
            continue;
        };
        let Some(base) = reference.get(s.name) else {
            println!("  {:<20} (no baseline, skipped)", s.name);
            continue;
        };
        let limit = base * factor;
        let mut retried = 0;
        while now > limit && retried < GATE_RETRIES {
            retried += 1;
            std::thread::sleep(GATE_RETRY_PAUSE);
            now = now.min(measure(s));
        }
        if retried > 0 {
            current.set(s.name, now);
        }
        let ok = now <= limit;
        println!(
            "  {:<20} {now:>10.1} µs vs {base:>10.1} µs  {}{}",
            s.name,
            if ok { "ok" } else { "REGRESSED" },
            if retried > 0 {
                format!("  ({retried} re-measurement(s))")
            } else {
                String::new()
            }
        );
        failed |= !ok;
    }

    // A copy with the fresh measurement appended, for tooling.
    let results = results_dir();
    let _ = std::fs::create_dir_all(&results);
    let mut with_current = entries;
    with_current.push(current);
    let out = results.join("BENCH_blas.json");
    if let Err(e) = std::fs::write(&out, trajectory_json(&with_current)) {
        eprintln!("perf_gate: writing {}: {e}", out.display());
    }

    if failed {
        eprintln!("perf_gate: FAILED — small-GEMM latency regressed beyond tolerance");
        ExitCode::FAILURE
    } else {
        println!("perf_gate: ok");
        ExitCode::SUCCESS
    }
}
