//! Runs the complete evaluation: every table and figure of the paper, plus
//! the artifact's 28-CSV output layout for each system and iteration count.
//!
//! Outputs land in `results/` (override with `BLOB_RESULTS_DIR`):
//! - `tables.txt` — Tables I, III, IV, V, VI in the paper's format
//! - `fig*.svg` — the six figures
//! - `csv/<system>/` — raw per-problem-type CSVs (the artifact layout)
//!
//! ```text
//! cargo run -p blob-bench --release --bin all_experiments
//! ```

use blob_analysis::Table;
use blob_bench::{
    first_iteration_cell, first_threshold_iteration, results_dir, sweep, threshold_table,
};
use blob_core::csv::write_to_dir;
use blob_core::problem::{GemmProblem, GemvProblem, Problem};
use blob_core::runner::SweepConfig;
use blob_sim::{presets, Precision};
use std::fmt::Write as _;
use std::process::Command;

fn main() {
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];
    let refs: Vec<&_> = systems.iter().collect();
    let mut out = String::new();

    // --- Tables III & IV -------------------------------------------------
    eprintln!("[1/5] Tables III & IV (square GEMM/GEMV threshold grids)...");
    let t3 = threshold_table(
        "Table III — Square SGEMM:DGEMM (M=N=K) GPU offload thresholds",
        &refs,
        Problem::Gemm(GemmProblem::Square),
    );
    let t4 = threshold_table(
        "Table IV — Square SGEMV:DGEMV (M=N) GPU offload thresholds",
        &refs,
        Problem::Gemv(GemvProblem::Square),
    );
    writeln!(out, "{}\n", t3.render()).unwrap();
    writeln!(out, "{}\n", t4.render()).unwrap();

    // --- Tables V & VI ----------------------------------------------------
    eprintln!("[2/5] Tables V & VI (non-square first-threshold iterations)...");
    let mut t5 = Table::new(
        "Table V — First iteration count with a Transfer-Once threshold (non-square GEMM, SGEMM:DGEMM)",
        &["Problem type", "DAWN", "LUMI", "Isambard-AI"],
    );
    for &g in &GemmProblem::NON_SQUARE {
        let p = Problem::Gemm(g);
        let mut row = vec![p.label().to_string()];
        for sys in &systems {
            row.push(first_iteration_cell(
                first_threshold_iteration(sys, p, Precision::F32),
                first_threshold_iteration(sys, p, Precision::F64),
            ));
        }
        t5.push_row(row);
    }
    let mut t6 = Table::new(
        "Table VI — First iteration count with a Transfer-Once threshold (non-square GEMV, SGEMV:DGEMV)",
        &["Problem type", "DAWN", "LUMI", "Isambard-AI"],
    );
    for &v in &GemvProblem::NON_SQUARE {
        let p = Problem::Gemv(v);
        let mut row = vec![p.label().to_string()];
        for sys in &systems {
            row.push(first_iteration_cell(
                first_threshold_iteration(sys, p, Precision::F32),
                first_threshold_iteration(sys, p, Precision::F64),
            ));
        }
        t6.push_row(row);
    }
    writeln!(out, "{}\n", t5.render()).unwrap();
    writeln!(out, "{}\n", t6.render()).unwrap();
    std::fs::write(dir.join("tables.txt"), &out).expect("write tables.txt");

    // --- Raw CSVs: the artifact's 28-files-per-run layout ------------------
    eprintln!("[3/5] Raw CSVs (28 per system x iteration count, stride 4)...");
    for sys in &systems {
        let sys_dir = dir
            .join("csv")
            .join(sys.name.to_lowercase().replace([' ', '-'], "_"));
        for &iters in &SweepConfig::PAPER_ITERATIONS {
            for problem in Problem::all() {
                for precision in Precision::ALL {
                    // stride 4 keeps the full-grid output tractable while
                    // resolving every curve feature
                    let cfg = SweepConfig::paper(iters).with_step(4);
                    let s = blob_core::runner::run_sweep(sys, problem, precision, &cfg);
                    write_to_dir(&sys_dir, &s).expect("write CSV");
                }
            }
        }
        eprintln!("    {} done", sys.name);
    }

    // --- Figures & Table I: delegate to the dedicated binaries -------------
    eprintln!("[4/5] Table I, Figures 2-7, extensions and ablations...");
    for bin in [
        "table1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "ext_batched",
        "ext_matrix_engine",
        "ext_spmv",
        "ext_energy",
        "ablation_quirks",
        "roofline",
        "fig_timeline",
        "ext_hybrid",
        "ext_trsm",
        "report",
    ] {
        let status = Command::new(std::env::current_exe().unwrap().with_file_name(bin))
            .env("BLOB_RESULTS_DIR", &dir)
            .status();
        match status {
            Ok(st) if st.success() => eprintln!("    {bin} ok"),
            other => eprintln!("    {bin} failed: {other:?} (run it directly)"),
        }
    }

    // --- Validation sample --------------------------------------------------
    eprintln!("[5/5] Checksum validation sample (CPU vs GPU kernel paths)...");
    let mut checked = 0;
    let mut failures = 0;
    for problem in Problem::all() {
        for precision in Precision::ALL {
            let call = blob_core::runner::call_for(problem, precision, 33, &SweepConfig::paper(1));
            let rep = blob_core::validate_call(&call, 0xB10B);
            checked += 1;
            if !rep.ok {
                failures += 1;
                eprintln!("    FAIL {problem:?} {precision}: rel err {}", rep.rel_err);
            }
        }
    }
    eprintln!("    {checked} validated, {failures} failures");

    println!("{out}");
    println!("All experiment outputs written to {}", dir.display());
    let _ = sweep; // re-exported for doc purposes
}
