//! `trace_gate` — proves the disabled trace plane is (near-)free.
//!
//! The trace plane ships enabled in every build: `trace::span` guards sit
//! on the serve request path, the sweep runner's per-size loop, the thread
//! pool's dispatch/job/wait paths, and (through `blob_blas::tracehook`)
//! the GEMM pack/compute micro-phases. The zero-cost claim is that with
//! tracing disabled a span open+drop is one relaxed atomic load and an
//! inert guard, so even the most overhead-sensitive gated kernel shape
//! (`gemm_par4_64` in `perf_gate`) cannot lose 1% to it.
//!
//! The gate measures, with tracing disabled:
//!
//! 1. the per-call cost of a disabled `trace::span` guard (create + drop
//!    in a hot loop, min over repetitions — interference only adds time),
//!    and
//! 2. the `gemm_par4_64` per-call latency, the same statistic `perf_gate`
//!    gates on,
//!
//! and fails unless [`SPANS_PER_CALL`] disabled spans cost **< 1%** of
//! one small-GEMM call. [`SPANS_PER_CALL`] is a deliberate over-estimate
//! of how many spans one kernel call can traverse (the pool opens one
//! dispatch, one wait, and one span per job; the kernel adds a handful of
//! pack/compute spans per thread), so the bound holds with a wide margin
//! on the real layout. Results land in `results/trace_gate.csv`.
//!
//! ```text
//! cargo run --release -p blob-bench --bin trace_gate
//! ```

use blob_bench::microbench::{black_box, measure_latency};
use blob_bench::results_dir;
use blob_core::trace;
use std::process::ExitCode;
use std::time::Instant;

/// Worker-thread count of the reference GEMM (matches `perf_gate`).
const THREADS: usize = 4;

/// Side of the reference GEMM (`gemm_par4_64`, the shape most sensitive
/// to per-call overhead).
const DIM: usize = 64;

/// Deliberately pessimistic spans-per-kernel-call multiplier: the real
/// hot path traverses ~3 pool spans plus ~3 pack/compute spans per
/// worker, far below this.
const SPANS_PER_CALL: f64 = 64.0;

/// Overhead budget, percent of one `gemm_par4_64` call.
const BUDGET_PCT: f64 = 1.0;

/// Guard open+drops per timed block of the span microbenchmark. Large
/// enough that the `Instant` pair around the block is amortised to
/// nothing.
const BLOCK: u64 = 4_000_000;

/// Repetitions; the statistic is the minimum (noise only adds time).
const REPS: usize = 5;

/// Nanoseconds per disabled `trace::span` open+drop, min over [`REPS`]
/// blocks.
fn measure_span_ns() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for i in 0..BLOCK {
            let g = trace::span(trace::names::SWEEP_SIZE, trace::cats::RUNNER);
            black_box(&g);
            drop(g);
            black_box(&i);
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / BLOCK as f64);
    }
    best
}

/// Per-call latency of `gemm_par4_64` in nanoseconds (median, min over
/// [`REPS`] reps — the `perf_gate` statistic).
fn measure_gemm_ns() -> f64 {
    let a = vec![0.5f64; DIM * DIM];
    let b = vec![0.25f64; DIM * DIM];
    let mut c = vec![0.0f64; DIM * DIM];
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let stats = measure_latency(10, 41, || {
            let _ = blob_blas::gemm_parallel(
                THREADS, DIM, DIM, DIM, 1.0, &a, DIM, &b, DIM, 0.0, &mut c, DIM,
            );
            black_box(&c);
        });
        best = best.min(stats.median * 1e9);
    }
    best
}

fn main() -> ExitCode {
    // The gate's premise is the *disabled* path; refuse to measure noise.
    if trace::active() {
        eprintln!("trace_gate: the trace plane is armed — disable it first");
        return ExitCode::from(2);
    }

    println!("trace_gate: measuring the disabled trace plane");
    let span_ns = measure_span_ns();
    println!("  disabled trace::span    {span_ns:>10.3} ns/call (min of {REPS} blocks of {BLOCK})");
    let gemm_ns = measure_gemm_ns();
    println!("  gemm_par4_64            {:>10.1} µs/call", gemm_ns / 1e3);

    let overhead_pct = 100.0 * (SPANS_PER_CALL * span_ns) / gemm_ns;
    println!(
        "  {SPANS_PER_CALL:.0} spans per call -> {overhead_pct:.4}% of one gemm_par4_64 (budget {BUDGET_PCT}%)"
    );

    let dir = results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("trace_gate.csv");
    let csv = format!(
        "span_ns,gemm_par4_64_ns,spans_per_call,overhead_pct,budget_pct\n{span_ns:.3},{gemm_ns:.1},{SPANS_PER_CALL:.0},{overhead_pct:.4},{BUDGET_PCT}\n"
    );
    if let Err(e) = blob_core::atomicio::write_atomic(&path, csv.as_bytes()) {
        eprintln!("trace_gate: writing {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }

    if overhead_pct < BUDGET_PCT {
        println!("trace_gate: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("trace_gate: FAILED — disabled trace spans are not free");
        ExitCode::FAILURE
    }
}
