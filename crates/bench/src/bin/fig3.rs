//! Regenerates **Fig 3**: square SGEMM performance on Isambard-AI for
//! different CPU libraries and configurations — NVPL with 72 threads vs
//! ArmPL vs single-threaded NVPL over the first 192 problem sizes, at 1 and
//! 8 iterations.
//!
//! The paper's point: NVPL wakes all 72 threads at every size, so ArmPL
//! (adaptive threading) and single-threaded NVPL win at small sizes —
//! library heuristics are one cause of Isambard-AI's tiny offload
//! thresholds.
//!
//! ```text
//! cargo run -p blob-bench --release --bin fig3
//! ```

use blob_analysis::{ascii_chart, write_svg, Series};
use blob_bench::results_dir;
use blob_core::problem::{GemmProblem, Problem};
use blob_core::runner::{run_sweep, SweepConfig};
use blob_sim::{presets, Precision};

fn main() {
    let configs = [
        presets::isambard_ai(),         // NVPL, 72 threads
        presets::isambard_ai_armpl(),   // ArmPL 24.04
        presets::isambard_ai_nvpl_1t(), // NVPL, 1 thread
    ];
    for iters in [1u32, 8] {
        let cfg = SweepConfig::new(1, 192, iters);
        let series: Vec<Series> = configs
            .iter()
            .map(|sys| {
                let s = run_sweep(
                    sys,
                    Problem::Gemm(GemmProblem::Square),
                    Precision::F32,
                    &cfg,
                );
                Series::from_usize(sys.cpu_lib.name, &s.cpu_series())
            })
            .collect();
        let title = format!(
            "Fig 3 — Square SGEMM on Isambard-AI CPU, first 192 sizes ({iters} iteration{})",
            if iters == 1 { "" } else { "s" }
        );
        println!("{}", ascii_chart(&title, &series, 100, 20));

        // the paper's observation, quantified at a small size
        let at = |s: &Series, x: f64| {
            s.points
                .iter()
                .find(|p| p.0 >= x)
                .map(|p| p.1)
                .unwrap_or(0.0)
        };
        let small = 48.0;
        println!(
            "GFLOP/s at size {small}: NVPL-72T {:.1} | ArmPL {:.1} | NVPL-1T {:.1}",
            at(&series[0], small),
            at(&series[1], small),
            at(&series[2], small),
        );
        assert!(
            at(&series[1], small) > at(&series[0], small),
            "ArmPL must beat NVPL-72T at small sizes (Fig 3)"
        );
        assert!(
            at(&series[2], small) > at(&series[0], small),
            "NVPL-1T must beat NVPL-72T at small sizes (Fig 3)"
        );

        let path = results_dir().join(format!("fig3_isambard_cpu_libs_i{iters}.svg"));
        write_svg(&path, &title, "M = N = K", "GFLOP/s", &series).expect("write SVG");
        println!("wrote {}\n", path.display());
    }
}
