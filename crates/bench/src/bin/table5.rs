//! Regenerates **Table V**: the iteration count at which each non-square
//! SGEMM:DGEMM problem type first yields a Transfer-Once offload threshold.
//!
//! ```text
//! cargo run -p blob-bench --release --bin table5
//! ```

use blob_analysis::Table;
use blob_bench::{first_iteration_cell, first_threshold_iteration};
use blob_core::problem::{GemmProblem, Problem};
use blob_sim::{presets, Precision};

fn main() {
    let systems = [presets::dawn(), presets::lumi(), presets::isambard_ai()];
    let mut table = Table::new(
        "Table V — Iteration count at which each non-square SGEMM:DGEMM problem type first yields an offload threshold",
        &["Problem type", "DAWN", "LUMI", "Isambard-AI"],
    );
    for &g in &GemmProblem::NON_SQUARE {
        let problem = Problem::Gemm(g);
        let mut row = vec![problem.label().to_string()];
        for sys in &systems {
            let s = first_threshold_iteration(sys, problem, Precision::F32);
            let d = first_threshold_iteration(sys, problem, Precision::F64);
            row.push(first_iteration_cell(s, d));
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("Paper reference (SGEMM:DGEMM first-threshold iteration count):");
    println!("  M=N, K=16M    | 1:1  | 1:1   | 1:1");
    println!("  M=N=32, K>=1  | —:—  | 8:—   | 1:1");
    println!("  K=N, M=16K    | 1:1  | 8:8   | 1:1");
    println!("  K=N=32, M>=1  | —:—  | 32:8  | 1:1");
    println!("  M=K, N=16K    | 1:1  | 1:8   | 1:1");
    println!("  M=K=32, N>=1  | —:—  | 32:32 | 1:1");
    println!("  M=N, K=32     | 8:8  | 32:32 | 8:8");
    println!("  M=N, M=16K    | 1:1  | 8:8   | 1:1");
}
