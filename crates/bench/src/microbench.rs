//! A small, dependency-free benchmark harness for the `benches/` targets.
//!
//! The workspace builds with no network access, so the usual Criterion
//! dependency is out; this module provides the subset those benchmarks
//! need: named groups, per-benchmark warm-up, batched adaptive timing,
//! min/median/mean reporting, optional element-throughput rates, and a
//! substring filter from the command line:
//!
//! ```text
//! cargo bench -p blob-bench --bench host_gemm            # everything
//! cargo bench -p blob-bench --bench host_gemm -- square  # filtered
//! ```
//!
//! Each benchmark is timed in batches: after warm-up estimates the cost of
//! one call, batch sizes are chosen so a batch lasts roughly one
//! measurement slice, and batches run until the time budget is spent. The
//! median batch rate is the headline number — robust to the occasional
//! descheduling spike that ruins a mean on shared machines.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Timing budget for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Warm-up wall time before measurement begins.
    pub warmup: Duration,
    /// Measurement wall-time budget.
    pub measure: Duration,
    /// Number of batch samples to aim for within the budget.
    pub samples: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(300),
            measure: Duration::from_secs(1),
            samples: 10,
        }
    }
}

/// One benchmark target file's harness: owns the options and the CLI
/// filter, prints one line per benchmark.
pub struct Bench {
    options: Options,
    filter: Option<String>,
}

impl Bench {
    /// A harness with the default budget and the filter taken from the
    /// first non-flag command-line argument (cargo passes `--bench` when
    /// running bench targets; skip any `--…` flags).
    pub fn from_args(name: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        println!("{name}: hand-rolled microbench (median of batched samples)");
        if let Some(f) = &filter {
            println!("filter: {f:?}");
        }
        Self {
            options: Options::default(),
            filter,
        }
    }

    /// Overrides the timing budget for all subsequent groups.
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Starts a named group; benchmark ids print as `group/id`.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group {
            bench: self,
            name: name.to_string(),
            throughput_elements: None,
        }
    }
}

/// A named group of benchmarks sharing an optional throughput unit.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    throughput_elements: Option<u64>,
}

impl Group<'_> {
    /// Declares how many elements (e.g. FLOPs) one call processes;
    /// subsequent benchmarks also report Melem/s.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.throughput_elements = Some(elements);
        self
    }

    /// Runs one benchmark and prints its summary line.
    pub fn bench<F: FnMut()>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.name);
        if let Some(filter) = &self.bench.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let stats = run_one(self.bench.options, f);
        let rate = self
            .throughput_elements
            .map(|e| format!("  {:>10.1} Melem/s", e as f64 / stats.median / 1e6))
            .unwrap_or_default();
        println!(
            "  {full:<40} median {}  (min {}, mean {}, {} samples){rate}",
            fmt_time(stats.median),
            fmt_time(stats.min),
            fmt_time(stats.mean),
            stats.samples,
        );
        self
    }
}

/// Per-call timing summary, all in seconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Median per-call seconds over the batch samples.
    pub median: f64,
    /// Fastest batch's per-call seconds.
    pub min: f64,
    /// Mean per-call seconds over all batches.
    pub mean: f64,
    /// Batch samples taken.
    pub samples: usize,
}

fn run_one<F: FnMut()>(options: Options, mut f: F) -> Stats {
    // Warm-up: run until the warm-up budget is spent, tracking per-call
    // cost to size measurement batches.
    let warm_start = Instant::now();
    let mut warm_calls = 0u64;
    while warm_start.elapsed() < options.warmup || warm_calls == 0 {
        f();
        warm_calls += 1;
    }
    let per_call = warm_start.elapsed().as_secs_f64() / warm_calls as f64;

    // Batch size targets measure/samples wall time per batch.
    let slice = options.measure.as_secs_f64() / options.samples.max(1) as f64;
    let batch = ((slice / per_call.max(1e-9)) as u64).clamp(1, 1_000_000_000);

    let mut rates = Vec::with_capacity(options.samples);
    let start = Instant::now();
    while rates.len() < 2
        || (start.elapsed() < options.measure && rates.len() < options.samples.max(2) * 4)
    {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        rates.push(t0.elapsed().as_secs_f64() / batch as f64);
    }

    rates.sort_by(|a, b| a.total_cmp(b));
    let median = rates[rates.len() / 2];
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    Stats {
        median,
        min: rates[0],
        mean,
        samples: rates.len(),
    }
}

/// Fixed-count per-call *latency* measurement: `warmup` untimed calls,
/// then `samples` individually timed calls, each one its own sample.
///
/// The batched harness above reports throughput-style rates and hides
/// per-call dispatch costs inside a tight loop; this entry point is for
/// spawn/dispatch-sensitive latency work (the `perf_gate` binary), where
/// the cost of *one* call — thread hand-off included — is the quantity
/// under test. The median is robust to a descheduled sample.
pub fn measure_latency<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> Stats {
    for _ in 0..warmup {
        f();
    }
    let samples = samples.max(1);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    Stats {
        median,
        min: times[0],
        mean,
        samples: times.len(),
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:>8.3} s ")
    } else if seconds >= 1e-3 {
        format!("{:>8.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:>8.3} µs", seconds * 1e6)
    } else {
        format!("{:>8.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_sane_for_a_known_workload() {
        let opts = Options {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(30),
            samples: 5,
        };
        let mut acc = 0u64;
        let stats = run_one(opts, || {
            for i in 0..100u64 {
                acc = acc.wrapping_add(black_box(i));
            }
        });
        black_box(acc);
        assert!(stats.samples >= 2);
        assert!(stats.min > 0.0);
        assert!(stats.min <= stats.median);
        assert!(stats.median.is_finite() && stats.mean.is_finite());
    }

    #[test]
    fn time_formatting_picks_the_right_unit() {
        assert!(fmt_time(2.5).contains("s"));
        assert!(fmt_time(2.5e-3).contains("ms"));
        assert!(fmt_time(2.5e-6).contains("µs"));
        assert!(fmt_time(2.5e-9).contains("ns"));
    }
}
