//! Host↔device interconnect model.
//!
//! Prices explicit (pinned-memory DMA) transfers: a fixed per-transfer
//! latency plus bytes over sustained bandwidth. The paper's three systems
//! span the interesting range: PCIe gen5 on DAWN, Infinity Fabric on LUMI,
//! and NVLink-C2C on the GH200 — whose order-of-magnitude bandwidth and
//! latency advantage is what "almost entirely amortises the data transfer
//! overhead" on Isambard-AI (§IV-A).

/// One CPU↔GPU interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Name, e.g. `"NVLink-C2C"`.
    pub name: &'static str,
    /// Per-transfer setup latency in microseconds (driver + DMA engine).
    pub latency_us: f64,
    /// Sustained host→device bandwidth, GB/s (pinned memory).
    pub h2d_gbs: f64,
    /// Sustained device→host bandwidth, GB/s (pinned memory).
    pub d2h_gbs: f64,
}

impl LinkModel {
    /// Seconds to move `bytes` host → device.
    pub fn to_device_seconds(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency_us * 1e-6 + bytes / (self.h2d_gbs * 1e9)
    }

    /// Seconds to move `bytes` device → host.
    pub fn from_device_seconds(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.latency_us * 1e-6 + bytes / (self.d2h_gbs * 1e9)
    }

    /// Round-trip seconds for an input/output byte pair (one transfer each
    /// way, as Transfer-Always pays every iteration).
    pub fn round_trip_seconds(&self, bytes_in: f64, bytes_out: f64) -> f64 {
        self.to_device_seconds(bytes_in) + self.from_device_seconds(bytes_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel {
            name: "test-link",
            latency_us: 10.0,
            h2d_gbs: 50.0,
            d2h_gbs: 40.0,
        }
    }

    #[test]
    fn latency_floor() {
        let l = link();
        let t = l.to_device_seconds(1.0);
        assert!(t >= 10e-6);
        assert!(t < 10.1e-6);
    }

    #[test]
    fn zero_bytes_is_free() {
        let l = link();
        assert_eq!(l.to_device_seconds(0.0), 0.0);
        assert_eq!(l.from_device_seconds(0.0), 0.0);
    }

    #[test]
    fn bandwidth_term() {
        let l = link();
        // 50 GB over a 50 GB/s link ~= 1 s + latency
        let t = l.to_device_seconds(50e9);
        assert!((t - 1.0).abs() < 1e-3);
        // asymmetric d2h
        let t2 = l.from_device_seconds(40e9);
        assert!((t2 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn round_trip_sums_both_directions() {
        let l = link();
        let rt = l.round_trip_seconds(1e9, 1e9);
        let manual = l.to_device_seconds(1e9) + l.from_device_seconds(1e9);
        assert_eq!(rt, manual);
    }

    #[test]
    fn faster_link_is_faster() {
        let slow = link();
        let fast = LinkModel {
            name: "c2c",
            latency_us: 1.5,
            h2d_gbs: 370.0,
            d2h_gbs: 370.0,
        };
        let b = 100e6;
        assert!(fast.to_device_seconds(b) < slow.to_device_seconds(b) / 5.0);
    }
}
