//! Execution traces: the per-phase timeline behind a GPU timing.
//!
//! [`SystemModel::gpu_seconds`] returns one number; [`gpu_trace`] returns
//! *where it went* — transfer-in, kernel, transfer-out, USM migration —
//! as a list of timestamped events whose total matches the scalar timing
//! exactly. The timeline makes the paper's §III-B2 offload strategies
//! visually obvious: Transfer-Once's long head and tail around a dense
//! kernel train, Transfer-Always's per-iteration sandwich, USM's
//! front-loaded migration.

use crate::call::BlasCall;
use crate::gpu::gpu_kernel_seconds;
use crate::offload::Offload;
use crate::system::SystemModel;

/// What a trace interval was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Explicit host→device copy.
    HostToDevice,
    /// Kernel execution on the device.
    Kernel,
    /// Explicit device→host copy.
    DeviceToHost,
    /// USM allocation/mapping setup.
    UsmSetup,
    /// USM on-demand page migration to the device.
    UsmMigration,
    /// USM write-back of output pages to the host.
    UsmWriteback,
}

impl Phase {
    /// Short label for plots.
    pub fn label(self) -> &'static str {
        match self {
            Phase::HostToDevice => "H2D",
            Phase::Kernel => "kernel",
            Phase::DeviceToHost => "D2H",
            Phase::UsmSetup => "setup",
            Phase::UsmMigration => "migrate",
            Phase::UsmWriteback => "writeback",
        }
    }
}

/// One timeline interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// What the interval was spent on.
    pub phase: Phase,
    /// Seconds from the start of the operation.
    pub start: f64,
    /// Seconds from the start of the operation at which the phase ends.
    pub end: f64,
    /// Which iteration this belongs to (kernel / per-iteration transfers).
    pub iteration: Option<u32>,
}

impl TraceEvent {
    /// The interval's length in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Builds the phase timeline for `iters` iterations of `call` under
/// `offload` on `sys`. Returns `None` for CPU-only systems. The last
/// event's `end` equals [`SystemModel::gpu_seconds`] for noise-free
/// systems (the trace is defined on the un-jittered model).
pub fn gpu_trace(
    sys: &SystemModel,
    call: &BlasCall,
    iters: u32,
    offload: Offload,
) -> Option<Vec<TraceEvent>> {
    let gpu = sys.gpu.as_ref()?;
    let lib = sys.gpu_lib.as_ref()?;
    let link = sys.link.as_ref()?;
    let kernel = gpu_kernel_seconds(gpu, lib, call);
    let bytes_in = call.bytes_to_device();
    let bytes_out = call.bytes_from_device();
    let t_in = link.to_device_seconds(bytes_in);
    let t_out = link.from_device_seconds(bytes_out);

    let mut events = Vec::new();
    let mut t = 0.0f64;
    let mut push = |phase: Phase, dur: f64, iteration: Option<u32>, t: &mut f64| {
        if dur > 0.0 {
            events.push(TraceEvent {
                phase,
                start: *t,
                end: *t + dur,
                iteration,
            });
            *t += dur;
        }
    };

    match offload {
        Offload::TransferOnce => {
            push(Phase::HostToDevice, t_in, None, &mut t);
            for i in 0..iters {
                push(Phase::Kernel, kernel, Some(i), &mut t);
            }
            push(Phase::DeviceToHost, t_out, None, &mut t);
        }
        Offload::TransferAlways => {
            for i in 0..iters {
                push(Phase::HostToDevice, t_in, Some(i), &mut t);
                push(Phase::Kernel, kernel, Some(i), &mut t);
                push(Phase::DeviceToHost, t_out, Some(i), &mut t);
            }
        }
        Offload::Unified => {
            let usm = sys.usm.as_ref()?;
            push(Phase::UsmSetup, usm.setup_us * 1e-6, None, &mut t);
            push(
                Phase::UsmMigration,
                bytes_in / (usm.migration_gbs * 1e9),
                None,
                &mut t,
            );
            for i in 0..iters {
                push(
                    Phase::Kernel,
                    kernel * (1.0 + usm.per_iter_penalty),
                    Some(i),
                    &mut t,
                );
            }
            push(
                Phase::UsmWriteback,
                bytes_out / (usm.writeback_gbs * 1e9),
                None,
                &mut t,
            );
        }
    }
    Some(events)
}

/// Sums trace time per phase, in event order of first appearance.
pub fn phase_totals(events: &[TraceEvent]) -> Vec<(Phase, f64)> {
    let mut order: Vec<Phase> = Vec::new();
    let mut totals: Vec<f64> = Vec::new();
    for e in events {
        match order.iter().position(|&p| p == e.phase) {
            Some(i) => totals[i] += e.duration(),
            None => {
                order.push(e.phase);
                totals.push(e.duration());
            }
        }
    }
    order.into_iter().zip(totals).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::Precision;

    fn call() -> BlasCall {
        BlasCall::gemm(Precision::F32, 512, 512, 512)
    }

    #[test]
    fn trace_total_matches_scalar_timing() {
        for sys in presets::evaluation_systems() {
            for offload in Offload::ALL {
                for iters in [1u32, 8, 32] {
                    let trace = gpu_trace(&sys, &call(), iters, offload).unwrap();
                    let total = trace.last().unwrap().end;
                    let scalar = sys.gpu_seconds(&call(), iters, offload).unwrap();
                    assert!(
                        (total - scalar).abs() / scalar < 1e-9,
                        "{} {offload} x{iters}: {total} vs {scalar}",
                        sys.name
                    );
                }
            }
        }
    }

    #[test]
    fn events_are_contiguous_and_ordered() {
        let trace = gpu_trace(&presets::dawn(), &call(), 8, Offload::TransferAlways).unwrap();
        assert!(!trace.is_empty());
        assert_eq!(trace[0].start, 0.0);
        for w in trace.windows(2) {
            assert!((w[0].end - w[1].start).abs() < 1e-15, "gap in timeline");
            assert!(w[0].duration() > 0.0);
        }
    }

    #[test]
    fn transfer_once_has_one_sandwich_always_has_iters() {
        let once = gpu_trace(&presets::dawn(), &call(), 8, Offload::TransferOnce).unwrap();
        assert_eq!(
            once.iter()
                .filter(|e| e.phase == Phase::HostToDevice)
                .count(),
            1
        );
        assert_eq!(once.iter().filter(|e| e.phase == Phase::Kernel).count(), 8);
        let always = gpu_trace(&presets::dawn(), &call(), 8, Offload::TransferAlways).unwrap();
        assert_eq!(
            always
                .iter()
                .filter(|e| e.phase == Phase::HostToDevice)
                .count(),
            8
        );
    }

    #[test]
    fn usm_trace_has_migration_phases() {
        let usm = gpu_trace(&presets::lumi(), &call(), 4, Offload::Unified).unwrap();
        assert!(usm.iter().any(|e| e.phase == Phase::UsmSetup));
        assert!(usm.iter().any(|e| e.phase == Phase::UsmMigration));
        assert!(usm.iter().any(|e| e.phase == Phase::UsmWriteback));
        assert!(usm.iter().all(|e| e.phase != Phase::HostToDevice));
    }

    #[test]
    fn phase_totals_sum_to_trace_end() {
        let trace = gpu_trace(&presets::isambard_ai(), &call(), 16, Offload::Unified).unwrap();
        let totals = phase_totals(&trace);
        let sum: f64 = totals.iter().map(|&(_, t)| t).sum();
        assert!((sum - trace.last().unwrap().end).abs() < 1e-12);
        // kernel dominates on the SoC with re-use
        let kernel_share = totals
            .iter()
            .find(|(p, _)| *p == Phase::Kernel)
            .map(|&(_, t)| t / sum)
            .unwrap();
        assert!(kernel_share > 0.5, "kernel share {kernel_share}");
    }

    #[test]
    fn cpu_only_systems_have_no_trace() {
        assert!(gpu_trace(
            &presets::isambard_ai_armpl(),
            &call(),
            1,
            Offload::TransferOnce
        )
        .is_none());
    }
}
