//! CPU socket performance model.
//!
//! Prices a BLAS call on one CPU socket driven by a concrete library, the
//! configuration the paper measures (one socket, one library, §IV). The
//! model is a roofline — `t = max(flops/rate, bytes/bandwidth)` — augmented
//! with the three effects the paper shows dominate real thresholds:
//!
//! 1. **Efficiency ramp**: achieved FLOP rate rises with problem size
//!    (thread fan-out, blocking, and packing only pay off once there is
//!    enough work), modelled as `eff(w) = eff_max · w / (w + w_half)`.
//! 2. **Per-call overhead**: library dispatch plus thread fork/join. NVPL
//!    pays it in full at every size (Fig 3); ArmPL scales threads — and so
//!    overhead — with problem size; single-threaded libraries barely pay it.
//! 3. **Cache warmth**: iterations after the first run faster while the
//!    working set is LLC-resident. This is the mechanism that makes
//!    Transfer-Always offload thresholds *grow* with iteration count
//!    (Table III): the CPU amortises cold misses across iterations, the
//!    per-iteration GPU transfer cannot.
//!
//! Library heuristic cliffs (oneMKL's 629 drop, etc.) layer on top as
//! [`Quirk`](crate::quirk::Quirk)s.

use crate::call::{BlasCall, Kernel};
use crate::quirk::{apply_quirks, Quirk};
use blob_blas::scalar::Precision;

/// Hardware description of one CPU socket.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Marketing name, e.g. `"Intel Xeon Platinum 8468"`.
    pub name: &'static str,
    /// Physical cores in the socket (the paper pins one full socket).
    pub cores: u32,
    /// Sustained all-core frequency in GHz.
    pub freq_ghz: f64,
    /// FP64 FLOPs per cycle per core; e.g. 32 for SPR with dual 512-bit
    /// FMA pipes, 16 for Zen 3 and Neoverse V2.
    pub fp64_flops_per_cycle_core: f64,
    /// FP32 throughput as a multiple of FP64 (2.0 for plain SIMD pipes;
    /// matrix engines can skew it — see [`crate::engine`]).
    pub fp32_ratio: f64,
    /// Sustained socket DRAM stream bandwidth, GB/s.
    pub dram_gbs: f64,
    /// Sustained single-core stream bandwidth, GB/s (caps serial GEMV).
    pub single_core_gbs: f64,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: f64,
    /// Aggregate LLC bandwidth, GB/s.
    pub llc_gbs: f64,
}

impl CpuModel {
    /// Theoretical peak GFLOP/s for `threads` active cores.
    pub fn peak_gflops(&self, precision: Precision, threads: u32) -> f64 {
        let active = threads.clamp(1, self.cores) as f64;
        let per_cycle = match precision {
            Precision::F32 => self.fp64_flops_per_cycle_core * self.fp32_ratio,
            Precision::F64 => self.fp64_flops_per_cycle_core,
        };
        active * self.freq_ghz * per_cycle
    }

    /// FP64 FLOPs per cycle for the whole socket — the figure the paper
    /// quotes when comparing DAWN (1536) and LUMI (896).
    pub fn socket_flops_per_cycle(&self) -> f64 {
        self.cores as f64 * self.fp64_flops_per_cycle_core
    }
}

/// A CPU BLAS library configuration: efficiency envelope, threading
/// behaviour, and heuristic quirks.
#[derive(Debug, Clone)]
pub struct CpuLibrary {
    /// Library name + version as the paper cites it, e.g. `"oneMKL 2024.1"`.
    pub name: &'static str,
    /// Threads the benchmark configures (`OMP_NUM_THREADS` / a full socket).
    pub threads: u32,
    /// Peak fraction of hardware FLOPs large GEMM achieves.
    pub gemm_eff_max: f64,
    /// FLOPs at which GEMM efficiency reaches half of `gemm_eff_max`.
    pub gemm_half_work: f64,
    /// FP64-specific half-work override (`None` = same as FP32). Used when
    /// a matrix engine accelerates one precision but not the other.
    pub gemm_half_work_f64: Option<f64>,
    /// Whether GEMV is multithreaded. AOCL famously is not (Fig 6) — its
    /// GEMV is then capped by *single-core* bandwidth.
    pub gemv_parallel: bool,
    /// Fraction of the relevant stream bandwidth GEMV achieves.
    pub gemv_bw_eff: f64,
    /// Per-call dispatch + fork/join overhead in microseconds.
    pub call_overhead_us: f64,
    /// ArmPL-style adaptive threading: thread count — and hence fork/join
    /// overhead — scales with problem size instead of always waking every
    /// thread (contrast NVPL, Fig 3).
    pub adaptive_threading: bool,
    /// Whether the library implements the β=0 short-circuit (Table I).
    pub beta0_opt: bool,
    /// Compute-rate multiplier for LLC-resident repeat iterations.
    pub warm_rate_boost: f64,
    /// Aspect-ratio penalty coefficient for rectangular GEMM: the achieved
    /// rate divides by `1 + shape_penalty * ln(max_dim/min_dim)/ln(16)`.
    /// CPU blocking/packing strategies are tuned for square-ish operands
    /// (Castelló et al., cited by the paper), so skinny shapes lose more
    /// efficiency on the CPU than on a GPU.
    pub shape_penalty: f64,
    /// Heuristic cliffs and steps observed for this library.
    pub quirks: Vec<Quirk>,
}

impl CpuLibrary {
    /// The GEMM ramp half-work for a precision.
    pub fn half_work_for(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F64 => self.gemm_half_work_f64.unwrap_or(self.gemm_half_work),
            Precision::F32 => self.gemm_half_work,
        }
    }
}

/// Cold (first) and warm (subsequent) per-iteration cost of a call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterCost {
    /// Seconds for the first iteration (cold caches).
    pub cold: f64,
    /// Seconds for each subsequent iteration (warmed caches).
    pub warm: f64,
}

impl IterCost {
    /// Total seconds for `iters` iterations.
    pub fn total(&self, iters: u32) -> f64 {
        if iters == 0 {
            0.0
        } else {
            self.cold + (iters as f64 - 1.0) * self.warm
        }
    }
}

/// Fraction of the working set that stays LLC-resident between iterations.
///
/// Full residency while the working set fits the (usable) LLC, then a sharp
/// cubic fall-off: once the set meaningfully exceeds the cache, iterations
/// evict each other's data and the warm advantage collapses. The sharpness
/// is what puts DAWN's square-GEMV offload thresholds right at the point
/// where the matrix spills out of the Xeon's LLC (§IV-B).
fn residency(ws_bytes: f64, llc_bytes: f64) -> f64 {
    if ws_bytes <= 0.0 {
        return 1.0;
    }
    // ~binary: full benefit while resident, rapid collapse once the set
    // exceeds the usable cache (mutual eviction between iterations)
    (llc_bytes / ws_bytes).min(1.0).powi(12)
}

/// Effective per-call overhead in seconds.
fn overhead_seconds(lib: &CpuLibrary, work: f64) -> f64 {
    let base = lib.call_overhead_us * 1e-6;
    if lib.adaptive_threading {
        // Thread count ramps with available work; overhead follows. The
        // square root mimics a thread count chosen proportional to the
        // problem's surface rather than its volume.
        let scale = (work / lib.gemm_half_work).sqrt().clamp(0.02, 1.0);
        (base * scale).max(0.5e-6)
    } else {
        base.max(0.5e-6)
    }
}

/// Prices one call on `(model, lib)` and returns cold/warm per-iteration
/// costs, with all library quirks applied.
pub fn cpu_iter_cost(model: &CpuModel, lib: &CpuLibrary, call: &BlasCall) -> IterCost {
    let work = call.library_flops(lib.beta0_opt);
    let bytes = call.bytes_streamed_lib(lib.beta0_opt);
    let ws = call.working_set();
    let res = residency(ws, model.llc_bytes);

    let (cold_core, warm_core) = match call.kernel {
        Kernel::Gemm { .. } => {
            let peak = model.peak_gflops(call.precision, lib.threads) * 1e9;
            let half_work = lib.half_work_for(call.precision);
            let eff = lib.gemm_eff_max * work / (work + half_work);
            // Small problems are not priced by the parallel ramp (which
            // would impose a constant-time floor of half_work/peak): they
            // run at a serial-ish floor rate, with latency covered by the
            // per-call overhead term.
            let floor = model.peak_gflops(call.precision, 1) * 1e9 * 0.6;
            let (m, n, k) = call.kernel.dims();
            let min_dim = m.min(n).min(k);
            let aspect = (m.max(n).max(k) as f64) / (min_dim.max(1) as f64);
            // The penalty only bites when every dimension is large enough
            // for the library's blocked path: shapes with one tiny fixed
            // dimension (the paper's {32}-problems) take specialised
            // small-dimension kernels that stay efficient.
            let shape = if min_dim >= 64 {
                1.0 + lib.shape_penalty * aspect.ln() / 16f64.ln()
            } else {
                1.0
            };
            let rate = ((peak * eff).max(floor) / shape).max(1.0);
            let t_comp = work / rate;
            let t_mem_cold = bytes / (model.dram_gbs * 1e9);
            let cold = t_comp.max(t_mem_cold);
            // Warm: LLC-resident fraction is served at LLC bandwidth and
            // the compute rate improves (packing/panel reuse hits cache).
            // capped at the hardware peak: warmth cannot beat physics
            let warm_rate = (rate * (1.0 + (lib.warm_rate_boost - 1.0) * res)).min(peak);
            let t_mem_warm =
                bytes * ((1.0 - res) / (model.dram_gbs * 1e9) + res / (model.llc_gbs * 1e9));
            let warm = (work / warm_rate).max(t_mem_warm);
            (cold, warm)
        }
        Kernel::Gemv { .. } => {
            // Bandwidth-bound. A serial library (AOCL) is capped by one
            // core's stream bandwidth regardless of socket width.
            let stream_gbs = if lib.gemv_parallel {
                model.dram_gbs
            } else {
                model.single_core_gbs
            };
            let bw = stream_gbs * lib.gemv_bw_eff * 1e9;
            let cold = bytes / bw;
            // Warm: the LLC-resident fraction streams from cache. A serial
            // library gains little: one core cannot consume LLC bandwidth.
            let warm_bw = if lib.gemv_parallel {
                let llc = model.llc_gbs * lib.gemv_bw_eff * 1e9;
                1.0 / ((1.0 - res) / bw + res / llc)
            } else {
                bw * (1.0 + 0.5 * res)
            };
            let warm = bytes / warm_bw;
            (cold, warm)
        }
    };

    let mut oh = overhead_seconds(lib, work);
    // A library that runs GEMV on one thread pays no fork/join for it.
    if matches!(call.kernel, Kernel::Gemv { .. }) && !lib.gemv_parallel {
        oh = oh.min(1.5e-6);
    }
    let cold = apply_quirks(&lib.quirks, call, cold_core + oh);
    let warm = apply_quirks(&lib.quirks, call, warm_core + oh);
    IterCost { cold, warm }
}

/// Total CPU seconds for `iters` iterations of `call`.
pub fn cpu_seconds(model: &CpuModel, lib: &CpuLibrary, call: &BlasCall, iters: u32) -> f64 {
    cpu_iter_cost(model, lib, call).total(iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuModel {
        CpuModel {
            name: "test-cpu",
            cores: 48,
            freq_ghz: 2.0,
            fp64_flops_per_cycle_core: 32.0,
            fp32_ratio: 2.0,
            dram_gbs: 300.0,
            single_core_gbs: 20.0,
            llc_bytes: 100e6,
            llc_gbs: 1500.0,
        }
    }

    fn lib() -> CpuLibrary {
        CpuLibrary {
            name: "test-lib",
            threads: 48,
            gemm_eff_max: 0.9,
            gemm_half_work: 1e8,
            gemm_half_work_f64: None,
            gemv_parallel: true,
            gemv_bw_eff: 0.9,
            call_overhead_us: 5.0,
            adaptive_threading: false,
            beta0_opt: true,
            warm_rate_boost: 1.3,
            shape_penalty: 0.5,
            quirks: vec![],
        }
    }

    fn sgemm(s: usize) -> BlasCall {
        BlasCall::gemm(Precision::F32, s, s, s)
    }

    fn sgemv(s: usize) -> BlasCall {
        BlasCall::gemv(Precision::F32, s, s)
    }

    #[test]
    fn peak_flops_precision_and_threads() {
        let m = model();
        assert_eq!(m.peak_gflops(Precision::F64, 48), 48.0 * 2.0 * 32.0);
        assert_eq!(
            m.peak_gflops(Precision::F32, 48),
            2.0 * m.peak_gflops(Precision::F64, 48)
        );
        assert_eq!(m.peak_gflops(Precision::F64, 1), 64.0);
        // clamped to socket
        assert_eq!(
            m.peak_gflops(Precision::F64, 999),
            m.peak_gflops(Precision::F64, 48)
        );
        assert_eq!(m.socket_flops_per_cycle(), 1536.0);
    }

    #[test]
    fn gemm_time_grows_with_size() {
        let (m, l) = (model(), lib());
        let t1 = cpu_seconds(&m, &l, &sgemm(128), 1);
        let t2 = cpu_seconds(&m, &l, &sgemm(256), 1);
        let t3 = cpu_seconds(&m, &l, &sgemm(1024), 1);
        assert!(t1 < t2 && t2 < t3);
    }

    #[test]
    fn gemm_efficiency_ramps_up() {
        // GFLOP/s must increase with size (ramp), approaching eff_max * peak
        let (m, l) = (model(), lib());
        let g = |s: usize| {
            let c = sgemm(s);
            c.paper_flops() / cpu_seconds(&m, &l, &c, 1) / 1e9
        };
        assert!(g(64) < g(512));
        assert!(g(512) < g(4096));
        let peak = m.peak_gflops(Precision::F32, 48);
        assert!(g(4096) < peak);
        assert!(g(4096) > 0.5 * l.gemm_eff_max * peak);
    }

    #[test]
    fn overhead_dominates_tiny_problems() {
        let (m, l) = (model(), lib());
        let t = cpu_seconds(&m, &l, &sgemm(2), 1);
        // ~ the 5 us call overhead
        assert!(t >= 5e-6, "t = {t}");
        assert!(t < 10e-6);
    }

    #[test]
    fn warm_iterations_cheaper_when_cache_resident() {
        let (m, l) = (model(), lib());
        // 256^3 f32 working set = 0.75 MB << 100 MB LLC
        let c = cpu_iter_cost(&m, &l, &sgemm(256));
        assert!(c.warm < c.cold);
        // 4096^2*3*4B = 200 MB >> LLC: warm about equals cold
        let big = cpu_iter_cost(&m, &l, &sgemm(4096));
        assert!(big.warm <= big.cold);
        let warm_gain_small = c.cold / c.warm;
        let warm_gain_big = big.cold / big.warm;
        assert!(warm_gain_small > warm_gain_big);
    }

    #[test]
    fn total_is_cold_plus_warm() {
        let (m, l) = (model(), lib());
        let ic = cpu_iter_cost(&m, &l, &sgemm(300));
        let t8 = cpu_seconds(&m, &l, &sgemm(300), 8);
        assert!((t8 - (ic.cold + 7.0 * ic.warm)).abs() < 1e-15);
        assert_eq!(cpu_seconds(&m, &l, &sgemm(300), 0), 0.0);
    }

    #[test]
    fn serial_gemv_capped_by_single_core_bw() {
        let m = model();
        let mut serial = lib();
        serial.gemv_parallel = false;
        let parallel = lib();
        let c = sgemv(2048);
        let t_serial = cpu_seconds(&m, &serial, &c, 1);
        let t_parallel = cpu_seconds(&m, &parallel, &c, 1);
        // parallel streams at 300 GB/s vs 20 GB/s single core: ~15x
        assert!(t_serial > 10.0 * t_parallel, "{t_serial} vs {t_parallel}");
    }

    #[test]
    fn gemv_is_bandwidth_priced() {
        let (m, l) = (model(), lib());
        let c = sgemv(4096);
        let t = cpu_seconds(&m, &l, &c, 1);
        let expect = c.bytes_streamed() / (m.dram_gbs * l.gemv_bw_eff * 1e9);
        // overhead is small at this size
        assert!((t - expect) / expect < 0.1);
    }

    #[test]
    fn adaptive_threading_shrinks_small_size_overhead() {
        let m = model();
        let mut adaptive = lib();
        adaptive.adaptive_threading = true;
        let fixed = lib();
        let tiny = sgemm(8);
        let t_a = cpu_seconds(&m, &adaptive, &tiny, 1);
        let t_f = cpu_seconds(&m, &fixed, &tiny, 1);
        assert!(t_a < t_f, "{t_a} vs {t_f}");
        // at large sizes, both pay full overhead; times converge
        let big = sgemm(2048);
        let ratio = cpu_seconds(&m, &adaptive, &big, 1) / cpu_seconds(&m, &fixed, &big, 1);
        assert!((ratio - 1.0).abs() < 0.01);
    }

    #[test]
    fn beta0_opt_saves_time_at_beta_zero_only() {
        let m = model();
        let with_opt = lib();
        let mut without = lib();
        without.beta0_opt = false;
        // K=4 shape from Table I: the 3MN term matters
        let c = BlasCall::gemm(Precision::F32, 2048, 2048, 4);
        let t_opt = cpu_seconds(&m, &with_opt, &c, 1);
        let t_noopt = cpu_seconds(&m, &without, &c, 1);
        assert!(t_noopt > t_opt);
        // at beta != 0, both do full work
        let cb = c.with_scalars(1.0, 2.0);
        let tb_opt = cpu_seconds(&m, &with_opt, &cb, 1);
        let tb_noopt = cpu_seconds(&m, &without, &cb, 1);
        assert!((tb_opt - tb_noopt).abs() < 1e-12);
    }

    #[test]
    fn quirk_cliff_shows_in_time() {
        use crate::quirk::{DimSel, QuirkShape};
        let m = model();
        let mut l = lib();
        l.quirks.push(Quirk {
            name: "mkl-629",
            kernel: Some(crate::call::KernelKind::Gemm),
            precision: None,
            dims_filter: None,
            dim: DimSel::Min,
            shape: QuirkShape::DropRecover {
                start: 629,
                penalty: 2.0,
                span: 2000,
            },
        });
        let t628 = cpu_seconds(&m, &l, &sgemm(628), 1);
        let t629 = cpu_seconds(&m, &l, &sgemm(629), 1);
        // cliff: 629 is slower than 628 by nearly 2x despite being bigger
        assert!(t629 > 1.8 * t628);
    }
}
