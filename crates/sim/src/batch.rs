//! Batched-BLAS pricing — the paper's first future-work item (§V): "we
//! wish to quantify the effect that [batched kernels] have on the offload
//! threshold".
//!
//! A batched call executes `batch` independent instances of the same small
//! kernel as one library call. The performance physics the batched-BLAS
//! literature (Dongarra et al., Abdelfattah et al. — both cited by the
//! paper) establishes, and which this model encodes:
//!
//! - **one** launch / dispatch overhead for the whole batch, not per
//!   instance — the dominant saving for small problems;
//! - device occupancy (the efficiency ramp) is driven by the *total* work
//!   `batch × w`, not the per-instance work: many small GEMMs fill a GPU
//!   that one of them cannot;
//! - data volume still scales with the batch: transfers move every
//!   instance's operands.

use crate::call::{BlasCall, Kernel};
use crate::cpu::{CpuLibrary, CpuModel};
use crate::gpu::{GpuLibrary, GpuModel};
use crate::offload::Offload;
use crate::quirk::apply_quirks;
use crate::system::SystemModel;

/// Seconds for one batched CPU call (`batch` instances, one fork/join).
pub fn cpu_batched_seconds(
    model: &CpuModel,
    lib: &CpuLibrary,
    call: &BlasCall,
    batch: usize,
    iters: u32,
) -> f64 {
    let batch = batch.max(1) as f64;
    let work = call.library_flops(lib.beta0_opt) * batch;
    let bytes = call.bytes_streamed_lib(lib.beta0_opt) * batch;
    let per_iter = match call.kernel {
        Kernel::Gemm { .. } => {
            let peak = model.peak_gflops(call.precision, lib.threads) * 1e9;
            // the efficiency ramp sees the batch's total work: instances
            // run concurrently across cores
            let eff = lib.gemm_eff_max * work / (work + lib.half_work_for(call.precision));
            let floor = model.peak_gflops(call.precision, 1) * 1e9 * 0.6;
            let rate = (peak * eff).max(floor).max(1.0);
            (work / rate).max(bytes / (model.dram_gbs * 1e9))
        }
        Kernel::Gemv { .. } => {
            let stream = if lib.gemv_parallel {
                model.dram_gbs
            } else {
                model.single_core_gbs
            };
            bytes / (stream * lib.gemv_bw_eff * 1e9)
        }
    };
    let oh = lib.call_overhead_us * 1e-6; // once per *batched* call
    let t = apply_quirks(&lib.quirks, call, per_iter + oh);
    t * iters as f64
}

/// Seconds for one batched GPU kernel (`batch` instances, one launch).
pub fn gpu_batched_kernel_seconds(
    model: &GpuModel,
    lib: &GpuLibrary,
    call: &BlasCall,
    batch: usize,
) -> f64 {
    let batch = batch.max(1) as f64;
    let work = call.library_flops(lib.beta0_opt) * batch;
    let bytes = call.bytes_streamed_lib(lib.beta0_opt) * batch;
    let peak = model.peak_gflops(call.precision) * 1e9;
    let core = match call.kernel {
        Kernel::Gemm { .. } => {
            // occupancy comes from the whole batch: this is the entire
            // point of batched GEMM on GPUs
            let eff = lib.gemm_eff_max * work / (work + lib.gemm_half_work);
            let floor = peak * 5e-3;
            let rate = (peak * eff).max(floor).max(1.0);
            (work / rate).max(bytes / (model.hbm_gbs * 1e9))
        }
        Kernel::Gemv { .. } => {
            // a batch of GEMVs has batch×m effective rows: occupancy heals
            let (m, _, _) = call.kernel.dims();
            let rows = m as f64 * batch;
            let occ = if lib.gemv_m_half > 0.0 {
                rows / (rows + lib.gemv_m_half)
            } else {
                1.0
            };
            bytes / (model.hbm_gbs * lib.gemv_bw_eff * occ * 1e9)
        }
    };
    apply_quirks(&lib.quirks, call, core + lib.launch_us * 1e-6)
}

impl SystemModel {
    /// Total CPU seconds for `iters` batched calls of `batch` instances.
    pub fn cpu_batched_seconds(&self, call: &BlasCall, batch: usize, iters: u32) -> f64 {
        cpu_batched_seconds(&self.cpu, &self.cpu_lib, call, batch, iters)
    }

    /// Total GPU seconds for `iters` batched calls of `batch` instances
    /// under `offload` (transfers move all `batch` operand sets).
    pub fn gpu_batched_seconds(
        &self,
        call: &BlasCall,
        batch: usize,
        iters: u32,
        offload: Offload,
    ) -> Option<f64> {
        let gpu = self.gpu.as_ref()?;
        let lib = self.gpu_lib.as_ref()?;
        let link = self.link.as_ref()?;
        let kernel = gpu_batched_kernel_seconds(gpu, lib, call, batch);
        let bytes_in = call.bytes_to_device() * batch.max(1) as f64;
        let bytes_out = call.bytes_from_device() * batch.max(1) as f64;
        Some(match offload {
            Offload::TransferOnce => {
                link.to_device_seconds(bytes_in)
                    + iters as f64 * kernel
                    + link.from_device_seconds(bytes_out)
            }
            Offload::TransferAlways => {
                iters as f64 * (link.round_trip_seconds(bytes_in, bytes_out) + kernel)
            }
            Offload::Unified => {
                let usm = self.usm.as_ref()?;
                usm.total_seconds(bytes_in, bytes_out, kernel, iters)
            }
        })
    }

    /// The batched offload threshold: smallest per-instance square size at
    /// which the GPU durably beats the CPU for this batch count (scanning
    /// sizes `1..=max_size`), or `None`.
    pub fn batched_gemm_threshold(
        &self,
        precision: crate::Precision,
        batch: usize,
        iters: u32,
        offload: Offload,
        max_size: usize,
    ) -> Option<usize> {
        use crate::call::BlasCall;
        let mut points = Vec::with_capacity(max_size);
        for s in 1..=max_size {
            let call = BlasCall::gemm(precision, s, s, s);
            let cpu = self.cpu_batched_seconds(&call, batch, iters);
            let gpu = self.gpu_batched_seconds(&call, batch, iters, offload)?;
            points.push((cpu, gpu));
        }
        // the same detector semantics as blob-core (two consecutive CPU
        // wins are real; isolated dips are noise), re-derived locally to
        // keep the dependency direction sim <- core
        let cpu_wins = |i: usize| points[i].0 < points[i].1;
        let real = |i: usize| cpu_wins(i) && (i == 0 || cpu_wins(i - 1));
        let last = (0..points.len()).rev().find(|&i| real(i));
        match last {
            None => Some(1),
            Some(i) if i + 1 < points.len() => {
                if cpu_wins(i + 1) {
                    if i + 2 < points.len() {
                        Some(i + 3)
                    } else {
                        None
                    }
                } else {
                    Some(i + 2)
                }
            }
            Some(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::Precision;

    #[test]
    fn batch_one_close_to_unbatched() {
        // a batch of 1 must price like a plain call (same formulas minus
        // the cache-warmth model, which batching forgoes)
        let sys = presets::lumi();
        let call = BlasCall::gemm(Precision::F32, 64, 64, 64);
        let batched = sys.cpu_batched_seconds(&call, 1, 1);
        let plain = sys.cpu_seconds(&call, 1);
        assert!((batched / plain - 1.0).abs() < 0.25, "{batched} vs {plain}");
    }

    #[test]
    fn batching_amortises_gpu_launch() {
        // total GPU time for N small GEMMs: one batched call beats N
        // separate calls by roughly the saved launches
        let sys = presets::dawn();
        let gpu = sys.gpu.as_ref().unwrap();
        let lib = sys.gpu_lib.as_ref().unwrap();
        let call = BlasCall::gemm(Precision::F32, 32, 32, 32);
        let one = gpu_batched_kernel_seconds(gpu, lib, &call, 1);
        let batch256 = gpu_batched_kernel_seconds(gpu, lib, &call, 256);
        assert!(
            batch256 < 0.2 * 256.0 * one,
            "batched {batch256} vs 256 separate {}",
            256.0 * one
        );
    }

    #[test]
    fn batching_lowers_the_offload_threshold() {
        // the paper's future-work hypothesis, quantified: more instances
        // per call -> the GPU pays off at smaller per-instance sizes
        let sys = presets::dawn();
        let t1 = sys
            .batched_gemm_threshold(Precision::F32, 1, 8, Offload::TransferOnce, 1024)
            .unwrap_or(1025);
        let t64 = sys
            .batched_gemm_threshold(Precision::F32, 64, 8, Offload::TransferOnce, 1024)
            .unwrap_or(1025);
        assert!(
            t64 < t1,
            "batch 64 threshold {t64} must undercut batch 1 threshold {t1}"
        );
    }

    #[test]
    fn batched_gemv_occupancy_heals_with_batch() {
        let sys = presets::lumi();
        let gpu = sys.gpu.as_ref().unwrap();
        let lib = sys.gpu_lib.as_ref().unwrap();
        let call = BlasCall::gemv(Precision::F32, 128, 128);
        let per_instance_1 = gpu_batched_kernel_seconds(gpu, lib, &call, 1);
        let per_instance_256 = gpu_batched_kernel_seconds(gpu, lib, &call, 256) / 256.0;
        assert!(per_instance_256 < 0.1 * per_instance_1);
    }

    #[test]
    fn transfer_volume_still_scales_with_batch() {
        let sys = presets::dawn();
        let call = BlasCall::gemm(Precision::F64, 64, 64, 64);
        let t32 = sys
            .gpu_batched_seconds(&call, 32, 1, Offload::TransferAlways)
            .unwrap();
        let t256 = sys
            .gpu_batched_seconds(&call, 256, 1, Offload::TransferAlways)
            .unwrap();
        // 8x the data cannot be less than ~4x the time on a PCIe system
        assert!(t256 > 4.0 * t32, "{t256} vs {t32}");
    }
}
