//! Energy pricing and the *energy* offload threshold.
//!
//! Two of the studies the paper builds on compare devices by energy, not
//! just time: Favaro et al. found FPGAs winning on energy even when losing
//! on runtime, and Torres et al. measured energy for MKL/cuBLAS/SYCL GEMMs.
//! This module extends the offload-threshold idea to joules: a whole-node
//! view where the *idle* power of the device you are not using still burns
//! while the other computes — the term that decides most CPU-vs-GPU energy
//! races.

use crate::call::BlasCall;
use crate::offload::Offload;
use crate::system::SystemModel;

/// Node power draw for one system, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// CPU socket at full BLAS tilt.
    pub cpu_active_w: f64,
    /// CPU socket idling (while the GPU computes).
    pub cpu_idle_w: f64,
    /// GPU device at full tilt (one tile/GCD/H100, the benchmark's unit).
    pub gpu_active_w: f64,
    /// GPU device idling (while the CPU computes).
    pub gpu_idle_w: f64,
}

impl PowerModel {
    /// DAWN: Xeon 8468 (350 W TDP) + one Max 1550 tile (600 W / 2).
    pub fn dawn() -> Self {
        Self {
            cpu_active_w: 350.0,
            cpu_idle_w: 100.0,
            gpu_active_w: 300.0,
            gpu_idle_w: 90.0,
        }
    }

    /// LUMI: EPYC 7A53 (280 W) + one MI250X GCD (560 W / 2).
    pub fn lumi() -> Self {
        Self {
            cpu_active_w: 280.0,
            cpu_idle_w: 85.0,
            gpu_active_w: 280.0,
            gpu_idle_w: 85.0,
        }
    }

    /// Isambard-AI: a GH200 module (~700 W), split Grace ~200 / H100 ~500.
    pub fn isambard_ai() -> Self {
        Self {
            cpu_active_w: 200.0,
            cpu_idle_w: 60.0,
            gpu_active_w: 500.0,
            gpu_idle_w: 120.0,
        }
    }

    /// The power model matching a preset system by name.
    pub fn for_system(sys: &SystemModel) -> Self {
        if sys.name.contains("LUMI") {
            Self::lumi()
        } else if sys.name.contains("Isambard") {
            Self::isambard_ai()
        } else {
            Self::dawn()
        }
    }
}

/// Whole-node joules for running `iters` iterations on the **CPU**
/// (the GPU sits idle for the duration).
pub fn cpu_energy_joules(
    sys: &SystemModel,
    power: &PowerModel,
    call: &BlasCall,
    iters: u32,
) -> f64 {
    let t = sys.cpu_seconds(call, iters);
    t * (power.cpu_active_w + power.gpu_idle_w)
}

/// Whole-node joules for running `iters` iterations on the **GPU**
/// (the CPU idles, the GPU is active; transfer time is charged at active
/// power on both sides — both participate in DMA).
pub fn gpu_energy_joules(
    sys: &SystemModel,
    power: &PowerModel,
    call: &BlasCall,
    iters: u32,
    offload: Offload,
) -> Option<f64> {
    let t = sys.gpu_seconds(call, iters, offload)?;
    Some(t * (power.gpu_active_w + power.cpu_idle_w))
}

/// The *energy* offload threshold for square GEMM: the smallest size from
/// which the GPU durably uses fewer joules, scanning `1..=max_size`.
pub fn energy_gemm_threshold(
    sys: &SystemModel,
    power: &PowerModel,
    precision: crate::Precision,
    iters: u32,
    offload: Offload,
    max_size: usize,
) -> Option<usize> {
    let mut last_cpu_win: Option<usize> = None;
    let mut prev_cpu_won = false;
    for s in 1..=max_size {
        let call = BlasCall::gemm(precision, s, s, s);
        let e_cpu = cpu_energy_joules(sys, power, &call, iters);
        let e_gpu = gpu_energy_joules(sys, power, &call, iters, offload)?;
        let cpu_wins = e_cpu < e_gpu;
        if cpu_wins && (prev_cpu_won || s == 1) {
            last_cpu_win = Some(s);
        }
        prev_cpu_won = cpu_wins;
    }
    match last_cpu_win {
        None => Some(1),
        Some(s) if s < max_size => Some(s + 1),
        Some(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::Precision;

    #[test]
    fn energy_scales_with_time() {
        let sys = presets::dawn();
        let p = PowerModel::dawn();
        let call = BlasCall::gemm(Precision::F64, 512, 512, 512);
        let e1 = cpu_energy_joules(&sys, &p, &call, 1);
        let e4 = cpu_energy_joules(&sys, &p, &call, 4);
        // warm iterations are cheaper than the cold one, so 4 iterations
        // cost between 2x and 4.5x one iteration
        assert!(e4 > 2.0 * e1 && e4 < 4.5 * e1, "{e4} vs {e1}");
        assert!(e1 > 0.0);
    }

    #[test]
    fn whole_node_accounting_includes_the_idle_device() {
        let sys = presets::dawn();
        let p = PowerModel::dawn();
        let call = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        let t_cpu = sys.cpu_seconds(&call, 1);
        let e_cpu = cpu_energy_joules(&sys, &p, &call, 1);
        // more than the CPU alone would burn: the GPU idles alongside
        assert!(e_cpu > t_cpu * p.cpu_active_w);
        assert!((e_cpu - t_cpu * (p.cpu_active_w + p.gpu_idle_w)).abs() < 1e-12);
    }

    #[test]
    fn energy_threshold_exists_and_relates_to_time_threshold() {
        // Favaro et al.'s observation, transplanted: a device can win on
        // energy at a different size than on time. On DAWN the GPU *node*
        // (one 300 W tile + an idle 100 W CPU) draws less than the CPU
        // node (350 W socket + an idle 90 W tile), so joules flip at or
        // before the time crossover: energy threshold <= time threshold.
        let sys = presets::dawn();
        let p = PowerModel::dawn();
        let e = energy_gemm_threshold(&sys, &p, Precision::F32, 32, Offload::TransferOnce, 2048)
            .expect("energy threshold");
        // time threshold for comparison
        let mut t_time = None;
        let mut prev = false;
        let mut last = None;
        for s in 1..=2048usize {
            let call = BlasCall::gemm(Precision::F32, s, s, s);
            let w = sys.cpu_seconds(&call, 32)
                < sys.gpu_seconds(&call, 32, Offload::TransferOnce).unwrap();
            if w && (prev || s == 1) {
                last = Some(s);
            }
            prev = w;
        }
        if let Some(s) = last {
            if s < 2048 {
                t_time = Some(s + 1);
            }
        }
        let t = t_time.expect("time threshold");
        assert!(
            e <= t,
            "with a lower GPU-node wattage the energy threshold {e} must not exceed the time threshold {t}"
        );
        // and they stay in the same regime (within ~15%)
        assert!((t - e) as f64 / (t as f64) < 0.15, "{e} vs {t}");
    }

    #[test]
    fn gh200_wins_energy_where_it_wins_time() {
        // on the SoC the GPU's time advantage is so large that it wins
        // joules too despite its higher wattage
        let sys = presets::isambard_ai();
        let p = PowerModel::isambard_ai();
        let call = BlasCall::gemm(Precision::F32, 2048, 2048, 2048);
        let e_cpu = cpu_energy_joules(&sys, &p, &call, 32);
        let e_gpu = gpu_energy_joules(&sys, &p, &call, 32, Offload::TransferOnce).unwrap();
        assert!(e_gpu < e_cpu, "{e_gpu} vs {e_cpu}");
    }

    #[test]
    fn power_model_lookup() {
        assert_eq!(PowerModel::for_system(&presets::lumi()), PowerModel::lumi());
        assert_eq!(
            PowerModel::for_system(&presets::isambard_ai()),
            PowerModel::isambard_ai()
        );
        assert_eq!(PowerModel::for_system(&presets::dawn()), PowerModel::dawn());
    }
}
