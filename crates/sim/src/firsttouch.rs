//! First-touch / page-migration cost model and device residency tracking.
//!
//! The TACC follow-up work on automatic BLAS offloading (arXiv 2501.00279)
//! refines the flat USM accounting of [`crate::usm`]: under first-touch
//! unified memory, a GPU-routed call pays migration only for the pages of
//! its operands that are *not already resident* on the device, plus a
//! per-page fault-handling cost. Pages stay resident until capacity
//! pressure evicts them or the host touches them again (which forces a
//! write-back). A dispatch layer that routes calls per-shape therefore
//! sees *warm* repeats of a shape run at near-kernel speed, while
//! ping-ponging a buffer between CPU and GPU routes pays the migration
//! both ways — exactly the cost structure that makes hysteresis worth
//! having.
//!
//! [`FirstTouchModel`] prices the page movement; [`Residency`] tracks
//! which buffers are device-resident (LRU under a capacity budget) so the
//! caller can ask "how many of these bytes are cold right now?".

use crate::usm::UsmModel;

/// Prices page-granular data movement under first-touch unified memory.
#[derive(Debug, Clone, PartialEq)]
pub struct FirstTouchModel {
    /// Migration granularity in bytes (vendor drivers typically migrate
    /// 2 MiB huge pages).
    pub page_bytes: f64,
    /// Fault-handling cost per migrated page, µs (trap + driver +
    /// TLB shootdown).
    pub fault_us: f64,
    /// Effective host→device page-migration bandwidth, GB/s.
    pub migration_gbs: f64,
    /// Effective device→host write-back bandwidth, GB/s.
    pub writeback_gbs: f64,
    /// Fractional slowdown on every kernel execution from residual fault
    /// handling / address-translation traffic (mirrors
    /// [`UsmModel::per_iter_penalty`]).
    pub per_iter_penalty: f64,
}

/// Default migration granularity: 2 MiB huge pages.
pub const DEFAULT_PAGE_BYTES: f64 = 2.0 * 1024.0 * 1024.0;

/// Default per-page fault-handling cost, µs.
pub const DEFAULT_FAULT_US: f64 = 2.0;

impl FirstTouchModel {
    /// Derives a first-touch model from a vendor's flat USM behaviour:
    /// the bandwidths and per-iteration penalty carry over, and the flat
    /// per-problem `setup_us` is replaced by per-page fault costs at the
    /// default 2 MiB / 2 µs granularity.
    pub fn from_usm(usm: &UsmModel) -> Self {
        Self {
            page_bytes: DEFAULT_PAGE_BYTES,
            fault_us: DEFAULT_FAULT_US,
            migration_gbs: usm.migration_gbs,
            writeback_gbs: usm.writeback_gbs,
            per_iter_penalty: usm.per_iter_penalty,
        }
    }

    /// Number of pages covering `bytes` (ceiling; 0 for 0 bytes).
    pub fn pages(&self, bytes: f64) -> f64 {
        (bytes / self.page_bytes).ceil()
    }

    /// Seconds to fault `cold_bytes` host→device: per-page fault handling
    /// plus the migration itself. Warm (already-resident) bytes cost 0.
    pub fn to_device_seconds(&self, cold_bytes: f64) -> f64 {
        self.pages(cold_bytes) * self.fault_us * 1e-6 + cold_bytes / (self.migration_gbs * 1e9)
    }

    /// Seconds to write `bytes` back device→host when the host touches a
    /// device-resident buffer again.
    pub fn writeback_seconds(&self, bytes: f64) -> f64 {
        self.pages(bytes) * self.fault_us * 1e-6 + bytes / (self.writeback_gbs * 1e9)
    }

    /// Seconds of GPU kernel execution after the residual-fault tax.
    pub fn taxed_kernel_seconds(&self, kernel_seconds: f64) -> f64 {
        kernel_seconds * (1.0 + self.per_iter_penalty)
    }
}

/// Tracks which buffers are resident on the device.
///
/// Buffers are identified by an opaque `u64` key chosen by the caller
/// (typically a hash of call-site and operand). Eviction is LRU under a
/// byte-capacity budget; the tracker is purely deterministic, so replaying
/// the same touch sequence reproduces the same residency states.
#[derive(Debug, Clone)]
pub struct Residency {
    capacity_bytes: f64,
    /// `(key, bytes, last-touch stamp)`, unordered; scanned linearly (a
    /// dispatch trace touches at most a few live buffers per site).
    resident: Vec<(u64, f64, u64)>,
    clock: u64,
    migrated_in: f64,
    written_back: f64,
    evicted: f64,
}

impl Residency {
    /// An empty tracker with the given device-memory budget in bytes.
    pub fn new(capacity_bytes: f64) -> Self {
        Self {
            capacity_bytes,
            resident: Vec::new(),
            clock: 0,
            migrated_in: 0.0,
            written_back: 0.0,
            evicted: 0.0,
        }
    }

    /// Total bytes currently resident on the device.
    pub fn resident_bytes(&self) -> f64 {
        self.resident.iter().map(|&(_, b, _)| b).sum()
    }

    /// Cumulative bytes migrated host→device by [`Self::touch_device`].
    pub fn migrated_in_bytes(&self) -> f64 {
        self.migrated_in
    }

    /// Cumulative bytes written back device→host by [`Self::touch_host`].
    pub fn written_back_bytes(&self) -> f64 {
        self.written_back
    }

    /// Cumulative bytes silently evicted under capacity pressure.
    pub fn evicted_bytes(&self) -> f64 {
        self.evicted
    }

    /// Bytes of `(key, bytes)` that would be cold on a device touch right
    /// now, without changing any state — the planning-side peek.
    pub fn peek_cold(&self, key: u64, bytes: f64) -> f64 {
        match self.resident.iter().find(|&&(k, _, _)| k == key) {
            Some(&(_, have, _)) => (bytes - have).max(0.0),
            None => bytes,
        }
    }

    /// Bytes of `key` currently device-resident (0 when absent) — the
    /// planning-side peek for a host touch.
    pub fn peek_resident(&self, key: u64) -> f64 {
        self.resident
            .iter()
            .find(|&&(k, _, _)| k == key)
            .map_or(0.0, |&(_, b, _)| b)
    }

    /// The device touches buffer `key` of size `bytes`: returns the cold
    /// bytes that must migrate in, makes the buffer resident, and evicts
    /// least-recently-used buffers if the capacity budget is exceeded.
    pub fn touch_device(&mut self, key: u64, bytes: f64) -> f64 {
        self.clock += 1;
        let stamp = self.clock;
        let cold = match self.resident.iter_mut().find(|(k, _, _)| *k == key) {
            Some(entry) => {
                let cold = (bytes - entry.1).max(0.0);
                entry.1 = entry.1.max(bytes);
                entry.2 = stamp;
                cold
            }
            None => {
                self.resident.push((key, bytes, stamp));
                bytes
            }
        };
        self.migrated_in += cold;
        self.evict_over_capacity(key);
        cold
    }

    /// The host touches buffer `key`: returns the bytes that must write
    /// back (0 when the buffer was not device-resident) and drops the
    /// buffer's residency.
    pub fn touch_host(&mut self, key: u64) -> f64 {
        match self.resident.iter().position(|&(k, _, _)| k == key) {
            Some(i) => {
                let (_, bytes, _) = self.resident.swap_remove(i);
                self.written_back += bytes;
                bytes
            }
            None => 0.0,
        }
    }

    /// Drops all residency state (e.g. at the start of a fresh run).
    pub fn clear(&mut self) {
        self.resident.clear();
    }

    /// Evicts LRU buffers (never `just_touched`) until within capacity.
    fn evict_over_capacity(&mut self, just_touched: u64) {
        while self.resident_bytes() > self.capacity_bytes && self.resident.len() > 1 {
            let victim = self
                .resident
                .iter()
                .enumerate()
                .filter(|(_, &(k, _, _))| k != just_touched)
                .min_by_key(|(_, &(_, _, stamp))| stamp)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let (_, bytes, _) = self.resident.swap_remove(i);
                    self.evicted += bytes;
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FirstTouchModel {
        FirstTouchModel {
            page_bytes: 1024.0,
            fault_us: 2.0,
            migration_gbs: 10.0,
            writeback_gbs: 5.0,
            per_iter_penalty: 0.1,
        }
    }

    #[test]
    fn page_counts_round_up() {
        let m = model();
        assert_eq!(m.pages(0.0), 0.0);
        assert_eq!(m.pages(1.0), 1.0);
        assert_eq!(m.pages(1024.0), 1.0);
        assert_eq!(m.pages(1025.0), 2.0);
    }

    #[test]
    fn cold_bytes_priced_warm_bytes_free() {
        let m = model();
        assert_eq!(m.to_device_seconds(0.0), 0.0);
        // 2048 B = 2 pages: 2 * 2 µs fault + 2048 / 10 GB/s
        let t = m.to_device_seconds(2048.0);
        assert!((t - (4e-6 + 2048.0 / 10e9)).abs() < 1e-15);
    }

    #[test]
    fn writeback_uses_writeback_bandwidth() {
        let m = model();
        let t = m.writeback_seconds(1024.0);
        assert!((t - (2e-6 + 1024.0 / 5e9)).abs() < 1e-15);
    }

    #[test]
    fn from_usm_carries_bandwidths_and_penalty() {
        let usm = UsmModel {
            setup_us: 50.0,
            migration_gbs: 20.0,
            writeback_gbs: 15.0,
            per_iter_penalty: 0.07,
        };
        let m = FirstTouchModel::from_usm(&usm);
        assert_eq!(m.migration_gbs, 20.0);
        assert_eq!(m.writeback_gbs, 15.0);
        assert_eq!(m.per_iter_penalty, 0.07);
        assert_eq!(m.page_bytes, DEFAULT_PAGE_BYTES);
    }

    #[test]
    fn second_touch_is_warm() {
        let mut r = Residency::new(1e9);
        assert_eq!(r.touch_device(1, 4096.0), 4096.0);
        assert_eq!(r.touch_device(1, 4096.0), 0.0);
        assert_eq!(r.peek_cold(1, 4096.0), 0.0);
        assert_eq!(r.peek_cold(2, 100.0), 100.0);
        assert_eq!(r.resident_bytes(), 4096.0);
        assert_eq!(r.migrated_in_bytes(), 4096.0);
    }

    #[test]
    fn growth_pays_only_the_delta() {
        let mut r = Residency::new(1e9);
        r.touch_device(1, 1000.0);
        assert_eq!(r.touch_device(1, 1500.0), 500.0);
        assert_eq!(r.resident_bytes(), 1500.0);
    }

    #[test]
    fn host_touch_forces_writeback_and_drops_residency() {
        let mut r = Residency::new(1e9);
        r.touch_device(1, 2048.0);
        assert_eq!(r.touch_host(1), 2048.0);
        assert_eq!(r.written_back_bytes(), 2048.0);
        // no longer resident: next device touch is cold again (ping-pong)
        assert_eq!(r.touch_device(1, 2048.0), 2048.0);
        // host touch of a never-resident buffer is free
        assert_eq!(r.touch_host(99), 0.0);
    }

    #[test]
    fn lru_eviction_under_capacity_pressure() {
        let mut r = Residency::new(3000.0);
        r.touch_device(1, 1000.0);
        r.touch_device(2, 1000.0);
        r.touch_device(3, 1000.0);
        r.touch_device(2, 1000.0); // refresh 2
        r.touch_device(4, 1000.0); // evicts 1 (LRU)
        assert_eq!(r.peek_resident(1), 0.0);
        assert_eq!(r.peek_resident(2), 1000.0);
        assert_eq!(r.evicted_bytes(), 1000.0);
        assert!(r.resident_bytes() <= 3000.0);
    }

    #[test]
    fn oversized_buffer_never_evicts_itself() {
        let mut r = Residency::new(1000.0);
        assert_eq!(r.touch_device(1, 5000.0), 5000.0);
        // the just-touched buffer stays resident even though it exceeds
        // capacity on its own
        assert_eq!(r.peek_resident(1), 5000.0);
    }

    #[test]
    fn clear_drops_all_state() {
        let mut r = Residency::new(1e9);
        r.touch_device(1, 100.0);
        r.clear();
        assert_eq!(r.resident_bytes(), 0.0);
        assert_eq!(r.peek_cold(1, 100.0), 100.0);
    }
}
