//! GPU device performance model.
//!
//! Prices the *kernel execution* of a BLAS call on one GPU device (one tile
//! of an Intel Max 1550, one GCD of an MI250X, or the H100 of a GH200 —
//! matching the paper's single-device configuration, §IV). Data movement is
//! priced separately by [`link`](crate::link) / [`usm`](crate::usm) so the
//! three offload strategies can combine the pieces differently.
//!
//! GEMM: roofline with an occupancy ramp — small problems cannot fill the
//! device, so achieved rate climbs with available work, with a much larger
//! half-saturation work than a CPU (a GPU needs on the order of 10⁹ FLOPs
//! in flight to approach peak). A fixed per-call launch latency is added —
//! it is what keeps tiny problems on the CPU even on the GH200.
//!
//! GEMV: bandwidth-bound on HBM plus the launch latency.

use crate::call::{BlasCall, Kernel};
use crate::quirk::{apply_quirks, Quirk};
use blob_blas::scalar::Precision;

/// Hardware description of one GPU device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Marketing name, e.g. `"AMD MI250X (one GCD)"`.
    pub name: &'static str,
    /// Peak FP32 vector throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak FP64 vector throughput in TFLOP/s.
    pub fp64_tflops: f64,
    /// Sustained HBM bandwidth in GB/s.
    pub hbm_gbs: f64,
}

impl GpuModel {
    /// Peak GFLOP/s at the given precision.
    pub fn peak_gflops(&self, precision: Precision) -> f64 {
        match precision {
            Precision::F32 => self.fp32_tflops * 1e3,
            Precision::F64 => self.fp64_tflops * 1e3,
        }
    }
}

/// A GPU BLAS library configuration.
#[derive(Debug, Clone)]
pub struct GpuLibrary {
    /// Library name + version, e.g. `"cuBLAS 24.5"`.
    pub name: &'static str,
    /// Kernel launch + runtime dispatch latency in microseconds.
    pub launch_us: f64,
    /// Peak fraction of hardware FLOPs large GEMM achieves.
    pub gemm_eff_max: f64,
    /// FLOPs at which GEMM occupancy reaches half of `gemm_eff_max`.
    pub gemm_half_work: f64,
    /// Fraction of HBM bandwidth GEMV achieves.
    pub gemv_bw_eff: f64,
    /// Row count at which the GEMV kernel reaches half its bandwidth
    /// efficiency: GPU GEMV parallelises over rows, so matrices with few
    /// rows (the paper's wide `N = 16M` / `M = 32` shapes) underfill the
    /// device. 0 disables the ramp.
    pub gemv_m_half: f64,
    /// Whether the library implements the β=0 short-circuit (Table I shows
    /// all three GPU libraries do).
    pub beta0_opt: bool,
    /// Heuristic cliffs and steps observed for this library.
    pub quirks: Vec<Quirk>,
}

/// Seconds for one kernel execution of `call` (device-resident data,
/// includes launch latency, excludes host↔device transfers).
pub fn gpu_kernel_seconds(model: &GpuModel, lib: &GpuLibrary, call: &BlasCall) -> f64 {
    let work = call.library_flops(lib.beta0_opt);
    let bytes = call.bytes_streamed_lib(lib.beta0_opt);
    let launch = lib.launch_us * 1e-6;
    let core = match call.kernel {
        Kernel::Gemm { .. } => {
            let peak = model.peak_gflops(call.precision) * 1e9;
            let eff = lib.gemm_eff_max * work / (work + lib.gemm_half_work);
            // A single SM/CU-worth of throughput floors tiny kernels (the
            // occupancy ramp would otherwise impose a constant-time floor
            // of half_work/peak); launch latency covers the fixed cost.
            let floor = peak * 5e-3;
            let rate = (peak * eff).max(floor).max(1.0);
            let t_comp = work / rate;
            let t_mem = bytes / (model.hbm_gbs * 1e9);
            t_comp.max(t_mem)
        }
        Kernel::Gemv { m, .. } => {
            let occ = if lib.gemv_m_half > 0.0 {
                m as f64 / (m as f64 + lib.gemv_m_half)
            } else {
                1.0
            };
            bytes / (model.hbm_gbs * lib.gemv_bw_eff * occ * 1e9)
        }
    };
    apply_quirks(&lib.quirks, call, core + launch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use blob_blas::scalar::Precision;

    fn model() -> GpuModel {
        GpuModel {
            name: "test-gpu",
            fp32_tflops: 48.0,
            fp64_tflops: 24.0,
            hbm_gbs: 1600.0,
        }
    }

    fn lib() -> GpuLibrary {
        GpuLibrary {
            name: "test-gpulib",
            launch_us: 5.0,
            gemm_eff_max: 0.8,
            gemm_half_work: 4e9,
            gemv_bw_eff: 0.75,
            gemv_m_half: 0.0,
            beta0_opt: true,
            quirks: vec![],
        }
    }

    #[test]
    fn peak_by_precision() {
        let m = model();
        assert_eq!(m.peak_gflops(Precision::F32), 48_000.0);
        assert_eq!(m.peak_gflops(Precision::F64), 24_000.0);
    }

    #[test]
    fn launch_latency_floors_tiny_kernels() {
        let (m, l) = (model(), lib());
        let t = gpu_kernel_seconds(&m, &l, &BlasCall::gemm(Precision::F32, 2, 2, 2));
        assert!(t >= 5e-6);
        assert!(t < 6e-6);
    }

    #[test]
    fn occupancy_ramp_monotone() {
        let (m, l) = (model(), lib());
        let g = |s: usize| {
            let c = BlasCall::gemm(Precision::F32, s, s, s);
            c.paper_flops() / gpu_kernel_seconds(&m, &l, &c) / 1e9
        };
        assert!(g(128) < g(512));
        assert!(g(512) < g(2048));
        assert!(g(2048) < g(4096));
        // approaches but never exceeds eff_max * peak
        assert!(g(4096) < 0.8 * 48_000.0);
        assert!(g(4096) > 0.3 * 48_000.0);
    }

    #[test]
    fn gpu_needs_bigger_problems_than_cpu_to_saturate() {
        // half-saturation work for GPUs is ~4e9 flops: a 1260^3 problem.
        let (m, l) = (model(), lib());
        let c = BlasCall::gemm(Precision::F32, 1260, 1260, 1260);
        let g = c.paper_flops() / gpu_kernel_seconds(&m, &l, &c) / 1e9;
        let half = 0.5 * l.gemm_eff_max * m.peak_gflops(Precision::F32);
        assert!((g - half).abs() / half < 0.05, "g = {g}, half = {half}");
    }

    #[test]
    fn gemv_priced_by_hbm_bandwidth() {
        let (m, l) = (model(), lib());
        let c = BlasCall::gemv(Precision::F64, 4096, 4096);
        let t = gpu_kernel_seconds(&m, &l, &c);
        let expect = c.bytes_streamed() / (1600.0 * 0.75 * 1e9) + 5e-6;
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn f64_gemm_slower_than_f32() {
        let (m, l) = (model(), lib());
        let s = 2048;
        let tf32 = gpu_kernel_seconds(&m, &l, &BlasCall::gemm(Precision::F32, s, s, s));
        let tf64 = gpu_kernel_seconds(&m, &l, &BlasCall::gemm(Precision::F64, s, s, s));
        assert!(tf64 > tf32);
    }

    #[test]
    fn quirks_apply_to_gpu_kernels() {
        use crate::call::KernelKind;
        use crate::quirk::{DimSel, QuirkShape};
        let m = model();
        let mut l = lib();
        l.quirks.push(Quirk {
            name: "k-jump",
            kernel: Some(KernelKind::Gemm),
            precision: Some(Precision::F32),
            dims_filter: Some(|mm, nn, _| mm == 32 && nn == 32),
            dim: DimSel::K,
            shape: QuirkShape::StepFactor {
                start: 2560,
                factor: 0.2,
            },
        });
        let before = gpu_kernel_seconds(&m, &l, &BlasCall::gemm(Precision::F32, 32, 32, 2559));
        let after = gpu_kernel_seconds(&m, &l, &BlasCall::gemm(Precision::F32, 32, 32, 2560));
        // despite more work, the jump makes the larger K faster
        assert!(after < before);
    }
}
