//! TRSM offload pricing — the kernel whose CPU-vs-GPU picture the paper's
//! related work (Li et al.) calls "more complex": for small right-hand-side
//! counts the CPU wins, for large ones the GPU does. The paper also
//! criticises that comparison for excluding transfer time; this model can
//! price TRSM both ways and reproduce the difference.
//!
//! A left-side TRSM (`T·X = α·B`, `T: m×m`, `B: m×n`) does `m²·n` FLOPs.
//! Its `n` column solves are independent, but *within* a column the solve
//! is a dependency chain — so device efficiency ramps with `n` (the
//! parallel width), not with total work. That is exactly what produces the
//! Li-et-al. crossover: a GPU with thousands of lanes starves at small `n`
//! no matter how large `m` is.

use crate::offload::Offload;
use crate::system::SystemModel;
use crate::Precision;

/// One TRSM invocation (left side, `T: m×m`, `B/X: m×n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrsmCall {
    /// Triangle dimension (`T` is `m×m`).
    pub m: usize,
    /// Right-hand-side count (`B` is `m×n`).
    pub n: usize,
    /// Element precision of all operands.
    pub precision: Precision,
}

impl TrsmCall {
    /// A TRSM call with the given shape and precision.
    pub fn new(m: usize, n: usize, precision: Precision) -> Self {
        Self { m, n, precision }
    }

    /// FLOPs per execution (`m²·n`: one FMA per triangle element per RHS).
    pub fn flops(&self) -> f64 {
        self.m as f64 * self.m as f64 * self.n as f64
    }

    /// Bytes shipped host→device (the triangle + B).
    pub fn bytes_to_device(&self) -> f64 {
        let es = self.precision.bytes() as f64;
        // the stored triangle is m(m+1)/2 but libraries ship the full array
        (self.m * self.m + self.m * self.n) as f64 * es
    }

    /// Bytes shipped device→host (X overwrites B).
    pub fn bytes_from_device(&self) -> f64 {
        (self.m * self.n) as f64 * self.precision.bytes() as f64
    }
}

impl SystemModel {
    /// Total CPU seconds for `iters` TRSM executions: GEMM-class rate,
    /// parallel width capped by `n` columns (one core per column solve).
    pub fn cpu_trsm_seconds(&self, call: &TrsmCall, iters: u32) -> f64 {
        let work = call.flops();
        let usable_threads = (self.cpu_lib.threads as usize).min(call.n.max(1)) as u32;
        let peak = self.cpu.peak_gflops(call.precision, usable_threads) * 1e9;
        let eff = self.cpu_lib.gemm_eff_max * work / (work + self.cpu_lib.gemm_half_work);
        // dependency chains keep TRSM below GEMM efficiency
        let rate = (peak * eff * 0.6)
            .max(self.cpu.peak_gflops(call.precision, 1) * 1e9 * 0.3)
            .max(1.0);
        let t = work / rate + self.cpu_lib.call_overhead_us * 1e-6;
        t * iters as f64
    }

    /// Total GPU seconds for `iters` TRSM executions under `offload`, or
    /// `None` for CPU-only systems. The kernel's efficiency ramps with the
    /// parallel width `n`, not total work.
    pub fn gpu_trsm_seconds(&self, call: &TrsmCall, iters: u32, offload: Offload) -> Option<f64> {
        let gpu = self.gpu.as_ref()?;
        let lib = self.gpu_lib.as_ref()?;
        let link = self.link.as_ref()?;
        let work = call.flops();
        let peak = gpu.peak_gflops(call.precision) * 1e9;
        // width occupancy: n independent column chains; ~4k lanes to fill
        let occ = call.n as f64 / (call.n as f64 + 2000.0);
        let ramp = work / (work + lib.gemm_half_work);
        let rate = (peak * lib.gemm_eff_max * 0.5 * occ * ramp)
            .max(peak * 1e-4)
            .max(1.0);
        let kernel = work / rate + lib.launch_us * 1e-6;
        let bytes_in = call.bytes_to_device();
        let bytes_out = call.bytes_from_device();
        Some(match offload {
            Offload::TransferOnce => {
                link.to_device_seconds(bytes_in)
                    + iters as f64 * kernel
                    + link.from_device_seconds(bytes_out)
            }
            Offload::TransferAlways => {
                iters as f64 * (link.round_trip_seconds(bytes_in, bytes_out) + kernel)
            }
            Offload::Unified => {
                let usm = self.usm.as_ref()?;
                usm.total_seconds(bytes_in, bytes_out, kernel, iters)
            }
        })
    }

    /// GPU kernel seconds with data already resident — the (flawed)
    /// transfer-free comparison Li et al. made, kept so the model can
    /// reproduce their numbers *and* the paper's critique of them.
    pub fn gpu_trsm_resident_seconds(&self, call: &TrsmCall, iters: u32) -> Option<f64> {
        // Transfer-Once minus the two transfers
        let with = self.gpu_trsm_seconds(call, iters, Offload::TransferOnce)?;
        let link = self.link.as_ref()?;
        Some(
            with - link.to_device_seconds(call.bytes_to_device())
                - link.from_device_seconds(call.bytes_from_device()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn flops_and_bytes() {
        let c = TrsmCall::new(100, 10, Precision::F64);
        assert_eq!(c.flops(), 100_000.0);
        assert_eq!(c.bytes_to_device(), (10_000 + 1000) as f64 * 8.0);
        assert_eq!(c.bytes_from_device(), 8000.0);
    }

    #[test]
    fn li_et_al_crossover_small_n_cpu_large_n_gpu() {
        // resident-data comparison (their methodology): big triangle,
        // varying RHS count
        let sys = presets::dawn();
        let m = 2048;
        let small = TrsmCall::new(m, 4, Precision::F64);
        let large = TrsmCall::new(m, 2048, Precision::F64);
        let cpu_small = sys.cpu_trsm_seconds(&small, 1);
        let gpu_small = sys.gpu_trsm_resident_seconds(&small, 1).unwrap();
        assert!(
            cpu_small < gpu_small,
            "few RHS: CPU wins ({cpu_small} vs {gpu_small})"
        );
        let cpu_large = sys.cpu_trsm_seconds(&large, 1);
        let gpu_large = sys.gpu_trsm_resident_seconds(&large, 1).unwrap();
        assert!(
            gpu_large < cpu_large,
            "many RHS: GPU wins ({gpu_large} vs {cpu_large})"
        );
    }

    #[test]
    fn transfer_time_moves_the_crossover_up() {
        // the paper's critique: including transfers makes the GPU pay off
        // later than Li et al. report
        let sys = presets::dawn();
        let m = 1024;
        let crossover = |with_transfers: bool| -> usize {
            for n in (16..=4096).step_by(16) {
                let c = TrsmCall::new(m, n, Precision::F64);
                let gpu = if with_transfers {
                    sys.gpu_trsm_seconds(&c, 1, Offload::TransferOnce).unwrap()
                } else {
                    sys.gpu_trsm_resident_seconds(&c, 1).unwrap()
                };
                if gpu < sys.cpu_trsm_seconds(&c, 1) {
                    return n;
                }
            }
            usize::MAX
        };
        let resident = crossover(false);
        let with = crossover(true);
        assert!(
            with >= resident,
            "transfers can only delay the crossover: {with} vs {resident}"
        );
        assert!(with > resident, "and on PCIe they measurably do");
    }

    #[test]
    fn gh200_trsm_crossover_is_much_earlier() {
        let m = 1024;
        let cross = |sys: &crate::SystemModel| -> usize {
            for n in 1..=4096usize {
                let c = TrsmCall::new(m, n, Precision::F64);
                if sys.gpu_trsm_seconds(&c, 1, Offload::TransferOnce).unwrap()
                    < sys.cpu_trsm_seconds(&c, 1)
                {
                    return n;
                }
            }
            usize::MAX
        };
        let dawn = cross(&presets::dawn());
        let isam = cross(&presets::isambard_ai());
        assert!(
            isam < dawn,
            "SoC crossover {isam} below PCIe crossover {dawn}"
        );
    }

    #[test]
    fn times_positive_and_iter_scaled() {
        let sys = presets::lumi();
        let c = TrsmCall::new(512, 64, Precision::F32);
        let t1 = sys.cpu_trsm_seconds(&c, 1);
        let t8 = sys.cpu_trsm_seconds(&c, 8);
        assert!(t1 > 0.0);
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
        for o in Offload::ALL {
            assert!(sys.gpu_trsm_seconds(&c, 4, o).unwrap() > 0.0);
        }
    }
}
