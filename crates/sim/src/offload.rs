//! The three data-movement strategies GPU-BLOB evaluates (paper §III-B2).

/// How data moves between host and device across the `i` iterations of a
/// benchmarked BLAS call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Offload {
    /// Inputs copied to the device once before all iterations, outputs
    /// copied back once after — models high data re-use.
    TransferOnce,
    /// Inputs and outputs copied before/after *every* iteration — models
    /// accelerated BLAS interleaved with host compute phases.
    TransferAlways,
    /// Unified Shared Memory: no explicit copies; pages migrate on demand
    /// under the vendor driver's heuristics.
    Unified,
}

impl Offload {
    /// All strategies, in the column order of the paper's tables
    /// (Once, Always, USM).
    pub const ALL: [Offload; 3] = [
        Offload::TransferOnce,
        Offload::TransferAlways,
        Offload::Unified,
    ];

    /// Column header used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Offload::TransferOnce => "Once",
            Offload::TransferAlways => "Always",
            Offload::Unified => "USM",
        }
    }
}

impl std::fmt::Display for Offload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Offload {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "once" | "transfer-once" | "transferonce" => Ok(Offload::TransferOnce),
            "always" | "transfer-always" | "transferalways" => Ok(Offload::TransferAlways),
            "usm" | "unified" => Ok(Offload::Unified),
            other => Err(format!("unknown offload type: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(Offload::TransferOnce.label(), "Once");
        assert_eq!(Offload::TransferAlways.label(), "Always");
        assert_eq!(Offload::Unified.label(), "USM");
    }

    #[test]
    fn parse_round_trip() {
        for o in Offload::ALL {
            let parsed: Offload = o.label().parse().unwrap();
            assert_eq!(parsed, o);
        }
        assert!("pigeon".parse::<Offload>().is_err());
    }

    #[test]
    fn table_column_order() {
        assert_eq!(
            Offload::ALL,
            [
                Offload::TransferOnce,
                Offload::TransferAlways,
                Offload::Unified
            ]
        );
    }
}
