//! Calibrated models of the paper's evaluation systems (Table II):
//!
//! | System      | CPU                        | GPU                     |
//! |-------------|----------------------------|-------------------------|
//! | DAWN        | 2× Xeon Platinum 8468      | 4× Intel Max 1550       |
//! | LUMI        | 1× AMD EPYC 7A53           | 4× AMD MI250X           |
//! | Isambard-AI | 4× GH200 Superchip         | (Hopper H100 on-package)|
//!
//! Matching the paper's methodology, each preset models what the benchmark
//! actually drives: **one CPU socket** with the system's CPU library and
//! **one GPU device** (one Max 1550 *tile*, one MI250X *GCD*, one H100).
//!
//! Hardware numbers come from the public figures the paper cites (socket
//! FLOPs/cycle: DAWN 1536, LUMI 896, Isambard-AI 1152; interconnects: PCIe
//! gen5, Infinity Fabric, 900 GB/s bidirectional NVLink-C2C). Library
//! efficiency envelopes, overheads and quirks are calibrated so the offload
//! thresholds GPU-BLOB derives reproduce the qualitative structure of
//! Tables III–VI — see EXPERIMENTS.md for the paper-vs-model comparison.
//! Absolute GFLOP/s are deliberately *not* the target (the substitution
//! rule in DESIGN.md §1).

use crate::call::KernelKind;
use crate::cpu::{CpuLibrary, CpuModel};
use crate::gpu::{GpuLibrary, GpuModel};
use crate::link::LinkModel;
use crate::quirk::{DimSel, Quirk, QuirkShape};
use crate::system::SystemModel;
use crate::usm::UsmModel;
use blob_blas::scalar::Precision;

// ---------------------------------------------------------------------------
// CPU sockets
// ---------------------------------------------------------------------------

/// Intel Xeon Platinum 8468 (Sapphire Rapids): 48 cores, dual 512-bit FMA
/// pipes → 1536 FP64 FLOPs/cycle per socket — the paper's strongest CPU.
fn xeon_8468() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Platinum 8468",
        cores: 48,
        freq_ghz: 2.0, // sustained all-core AVX-512
        fp64_flops_per_cycle_core: 32.0,
        fp32_ratio: 2.0,
        dram_gbs: 250.0, // 8ch DDR5-4800, sustained
        single_core_gbs: 20.0,
        llc_bytes: 66e6, // usable share of the 105 MB LLC
        llc_gbs: 1000.0,
    }
}

/// AMD EPYC 7A53 "Trento" (LUMI): 56 usable cores, 896 FP64 FLOPs/cycle.
fn epyc_7a53() -> CpuModel {
    CpuModel {
        name: "AMD EPYC 7A53",
        cores: 56,
        freq_ghz: 2.0,
        fp64_flops_per_cycle_core: 16.0,
        fp32_ratio: 2.0,
        dram_gbs: 160.0, // 8ch DDR4-3200, sustained
        single_core_gbs: 40.0,
        llc_bytes: 180e6, // usable share of the 256 MB of L3
        llc_gbs: 1400.0,
    }
}

/// NVIDIA Grace (one GH200 superchip): 72 Neoverse V2 cores, 1152 FP64
/// FLOPs/cycle, LPDDR5X on package.
fn grace() -> CpuModel {
    CpuModel {
        name: "NVIDIA Grace (GH200)",
        cores: 72,
        freq_ghz: 3.3,
        fp64_flops_per_cycle_core: 16.0,
        fp32_ratio: 2.0,
        dram_gbs: 430.0, // LPDDR5X sustained
        single_core_gbs: 50.0,
        llc_bytes: 70e6, // usable share of the 114 MB L3
        llc_gbs: 1800.0,
    }
}

// ---------------------------------------------------------------------------
// GPU devices (one tile / GCD / H100 — the paper's single-device rule)
// ---------------------------------------------------------------------------

/// One tile of an Intel Data Center GPU Max 1550 (explicit scaling).
fn max1550_tile() -> GpuModel {
    GpuModel {
        name: "Intel Max 1550 (one tile)",
        fp32_tflops: 40.0,
        fp64_tflops: 20.0,
        hbm_gbs: 1200.0,
    }
}

/// One GCD of an AMD MI250X. CDNA2 vector FP32 and FP64 rates are equal.
fn mi250x_gcd() -> GpuModel {
    GpuModel {
        name: "AMD MI250X (one GCD)",
        fp32_tflops: 21.0,
        fp64_tflops: 21.0,
        hbm_gbs: 1300.0,
    }
}

/// The Hopper H100 of a GH200 superchip (96 GB HBM3).
fn h100_gh200() -> GpuModel {
    GpuModel {
        name: "NVIDIA H100 (GH200)",
        fp32_tflops: 55.0,
        fp64_tflops: 30.0,
        hbm_gbs: 3300.0,
    }
}

// ---------------------------------------------------------------------------
// Library quirks observed in the paper
// ---------------------------------------------------------------------------

/// oneMKL's CPU GEMM cliff at {629, 629, 629} "that is gradually recovered
/// from as the problem size increases" (Fig 2; also present for DGEMM).
fn quirk_mkl_629_drop() -> Quirk {
    Quirk {
        name: "oneMKL CPU GEMM drop at 629 (Fig 2)",
        kernel: Some(KernelKind::Gemm),
        precision: None,
        dims_filter: None,
        dim: DimSel::Min,
        shape: QuirkShape::DropRecover {
            start: 629,
            penalty: 2.2,
            span: 2800,
        },
    }
}

/// Grace CPU GEMV drop at ~{256, 256}, "consistent for all iteration
/// counts" (§IV-B). Keyed on the smaller dimension so skinny problems are
/// governed by the dedicated skinny-GEMV quirk instead.
fn quirk_grace_gemv_256() -> Quirk {
    Quirk {
        name: "Grace CPU GEMV drop at {256,256} (Fig 5)",
        kernel: Some(KernelKind::Gemv),
        precision: None,
        dims_filter: Some(|m, n, _| m.min(n) >= 64),
        dim: DimSel::Min,
        // the cliff recovers with size: at one iteration the GPU wins only
        // an interior window (Fig 4) and no threshold is produced
        shape: QuirkShape::DropRecover {
            start: 256,
            penalty: 2.5,
            span: 3000,
        },
    }
}

/// NVPL CPU drop for skinny GEMV at {2048, 32} / {32, 2048} (§IV-D).
fn quirk_nvpl_skinny_gemv() -> Quirk {
    Quirk {
        name: "NVPL skinny-GEMV drop at {2048,32} (§IV-D)",
        kernel: Some(KernelKind::Gemv),
        precision: None,
        dims_filter: Some(|m, n, _| m.min(n) <= 32),
        dim: DimSel::Max,
        shape: QuirkShape::DropPersist {
            start: 2048,
            penalty: 3.0,
        },
    }
}

/// rocBLAS SGEMM Transfer-side performance jump at {32, 32, 2560}
/// (§IV-C): the library switches to a far better kernel at K ≥ 2560.
fn quirk_rocblas_sgemm_k_jump() -> Quirk {
    Quirk {
        name: "rocBLAS SGEMM jump at {32,32,2560} (§IV-C)",
        kernel: Some(KernelKind::Gemm),
        precision: Some(Precision::F32),
        dims_filter: Some(|m, n, _| m == 32 && n == 32),
        dim: DimSel::K,
        shape: QuirkShape::StepFactor {
            start: 2560,
            factor: 0.25,
        },
    }
}

/// rocBLAS DGEMM flat-line for {32, 32, K}: "the GPU performance flat-lines
/// at a low GFLOP/s value very early on" (§IV-C).
fn quirk_rocblas_dgemm_flatline() -> Quirk {
    Quirk {
        name: "rocBLAS DGEMM {32,32,K} flat-line (§IV-C)",
        kernel: Some(KernelKind::Gemm),
        precision: Some(Precision::F64),
        dims_filter: Some(|m, n, _| m == 32 && n == 32),
        dim: DimSel::K,
        // time grows ∝ K, so achieved GFLOP/s stays pinned at a low value
        shape: QuirkShape::DecayAfter {
            start: 64,
            slope: 12.0,
        },
    }
}

/// OpenBLAS's poorer small-size GEMV performance relative to AOCL (Fig 6).
fn quirk_openblas_small_gemv() -> Quirk {
    Quirk {
        name: "OpenBLAS small-GEMV penalty (Fig 6)",
        kernel: Some(KernelKind::Gemv),
        precision: None,
        dims_filter: None,
        dim: DimSel::Max,
        shape: QuirkShape::SmallSizePenalty {
            end: 700,
            penalty: 5.0,
        },
    }
}

// ---------------------------------------------------------------------------
// CPU libraries
// ---------------------------------------------------------------------------

fn onemkl_cpu() -> CpuLibrary {
    CpuLibrary {
        name: "oneMKL 2024.1",
        threads: 48,
        gemm_eff_max: 0.90,
        gemm_half_work: 2.5e8,
        gemm_half_work_f64: None,
        gemv_parallel: true,
        gemv_bw_eff: 0.85,
        call_overhead_us: 6.0,
        adaptive_threading: false,
        beta0_opt: true,
        warm_rate_boost: 2.0,
        shape_penalty: 0.9,
        quirks: vec![quirk_mkl_629_drop()],
    }
}

fn aocl() -> CpuLibrary {
    CpuLibrary {
        name: "AOCL 4.1",
        threads: 56,
        gemm_eff_max: 0.82,
        gemm_half_work: 3e7,
        gemm_half_work_f64: None,
        // the paper's perf-stat finding: SGEMV at 2048 uses 0.89 CPUs
        gemv_parallel: false,
        gemv_bw_eff: 0.95,
        call_overhead_us: 8.0,
        adaptive_threading: false,
        beta0_opt: true,
        warm_rate_boost: 1.3,
        shape_penalty: 0.7,
        quirks: vec![],
    }
}

fn openblas_lumi() -> CpuLibrary {
    CpuLibrary {
        name: "OpenBLAS 0.3.24",
        threads: 56,
        gemm_eff_max: 0.78,
        gemm_half_work: 8e7,
        gemm_half_work_f64: None,
        gemv_parallel: true, // the fix for AOCL's serial GEMV (Fig 6)
        gemv_bw_eff: 0.70,
        call_overhead_us: 12.0,
        adaptive_threading: false,
        beta0_opt: true,
        warm_rate_boost: 1.25,
        shape_penalty: 0.7,
        quirks: vec![quirk_openblas_small_gemv()],
    }
}

fn nvpl() -> CpuLibrary {
    CpuLibrary {
        name: "NVPL 24.7",
        threads: 72,
        gemm_eff_max: 0.88,
        gemm_half_work: 4e7,
        gemm_half_work_f64: None,
        gemv_parallel: true,
        gemv_bw_eff: 0.85,
        // NVPL "seemingly attempts to use all available threads for every
        // problem size" (Fig 3): the full fork/join cost at every size.
        call_overhead_us: 3.2,
        adaptive_threading: false,
        beta0_opt: true,
        warm_rate_boost: 1.3,
        shape_penalty: 0.6,
        quirks: vec![quirk_grace_gemv_256(), quirk_nvpl_skinny_gemv()],
    }
}

fn armpl() -> CpuLibrary {
    CpuLibrary {
        name: "ArmPL 24.04",
        threads: 72,
        gemm_eff_max: 0.86,
        gemm_half_work: 3e7,
        gemm_half_work_f64: None,
        gemv_parallel: true,
        gemv_bw_eff: 0.80,
        call_overhead_us: 25.0,
        // ArmPL "scales the thread count with the problem size" (Fig 3)
        adaptive_threading: true,
        beta0_opt: true,
        warm_rate_boost: 1.3,
        shape_penalty: 0.6,
        quirks: vec![],
    }
}

fn nvpl_single_thread() -> CpuLibrary {
    CpuLibrary {
        name: "NVPL 24.7 (1 thread)",
        threads: 1,
        gemm_eff_max: 0.92,
        gemm_half_work: 8e5,
        gemm_half_work_f64: None,
        gemv_parallel: false,
        gemv_bw_eff: 0.90,
        call_overhead_us: 1.0,
        adaptive_threading: false,
        beta0_opt: true,
        warm_rate_boost: 1.4,
        shape_penalty: 0.3,
        quirks: vec![],
    }
}

// ---------------------------------------------------------------------------
// GPU libraries
// ---------------------------------------------------------------------------

fn onemkl_gpu() -> GpuLibrary {
    GpuLibrary {
        name: "oneMKL 2024.1 (Level Zero)",
        launch_us: 15.0,
        gemm_eff_max: 0.75,
        gemm_half_work: 1.2e9,
        gemv_bw_eff: 0.85,
        gemv_m_half: 900.0,
        beta0_opt: true,
        quirks: vec![],
    }
}

fn rocblas() -> GpuLibrary {
    GpuLibrary {
        name: "rocBLAS 5.2.3",
        launch_us: 7.0,
        gemm_eff_max: 0.78,
        gemm_half_work: 8e7,
        gemv_bw_eff: 0.70,
        gemv_m_half: 6000.0,
        beta0_opt: true,
        quirks: vec![quirk_rocblas_sgemm_k_jump(), quirk_rocblas_dgemm_flatline()],
    }
}

fn cublas() -> GpuLibrary {
    GpuLibrary {
        name: "cuBLAS 24.5",
        launch_us: 3.5,
        gemm_eff_max: 0.80,
        gemm_half_work: 6e7,
        gemv_bw_eff: 0.80,
        gemv_m_half: 700.0,
        beta0_opt: true,
        quirks: vec![],
    }
}

// ---------------------------------------------------------------------------
// Interconnects & USM behaviours
// ---------------------------------------------------------------------------

fn pcie5() -> LinkModel {
    LinkModel {
        name: "PCIe gen5 x16",
        latency_us: 8.0,
        h2d_gbs: 52.0,
        d2h_gbs: 48.0,
    }
}

fn infinity_fabric() -> LinkModel {
    LinkModel {
        name: "Infinity Fabric (GPU-bind closest)",
        latency_us: 10.0,
        h2d_gbs: 36.0,
        d2h_gbs: 36.0,
    }
}

fn nvlink_c2c() -> LinkModel {
    LinkModel {
        name: "NVLink-C2C",
        latency_us: 1.0,
        h2d_gbs: 360.0,
        d2h_gbs: 360.0,
    }
}

fn usm_level_zero() -> UsmModel {
    // DAWN: "USM is on-par with Transfer-Once for all iteration counts"
    UsmModel {
        setup_us: 25.0,
        migration_gbs: 45.0,
        writeback_gbs: 42.0,
        per_iter_penalty: 0.02,
    }
}

fn usm_rocm() -> UsmModel {
    // LUMI: "USM consistently has much higher offload thresholds ... a
    // result of the vendor's page migration heuristics" (HSA_XNACK faults)
    UsmModel {
        setup_us: 100.0,
        migration_gbs: 6.5,
        writeback_gbs: 6.5,
        per_iter_penalty: 0.5,
    }
}

fn usm_cuda_c2c() -> UsmModel {
    // Isambard-AI: USM lags Transfer-Once at 1 iteration, catches up fast
    UsmModel {
        setup_us: 6.0,
        migration_gbs: 350.0,
        writeback_gbs: 350.0,
        per_iter_penalty: 0.01,
    }
}

// ---------------------------------------------------------------------------
// System presets
// ---------------------------------------------------------------------------

/// DAWN: Xeon 8468 + Intel Max 1550 (one tile, explicit scaling), oneMKL
/// on both sides, PCIe gen5 between them.
pub fn dawn() -> SystemModel {
    SystemModel {
        name: "DAWN",
        description:
            "Intel Xeon Platinum 8468 + Intel Max 1550 (one tile), oneMKL 2024.1, PCIe gen5",
        cpu: xeon_8468(),
        cpu_lib: onemkl_cpu(),
        gpu: Some(max1550_tile()),
        gpu_lib: Some(onemkl_gpu()),
        link: Some(pcie5()),
        usm: Some(usm_level_zero()),
        noise: None,
    }
}

/// DAWN with *implicit* scaling: the driver spreads work over both tiles,
/// paying cross-tile communication — "much lower and less-consistent
/// performance ... despite having twice the compute resources" (Fig 7).
pub fn dawn_implicit_scaling() -> SystemModel {
    let mut sys = dawn();
    if let Some(lib) = sys.gpu_lib.as_mut() {
        lib.name = "oneMKL 2024.1 (implicit scaling)";
        lib.gemm_eff_max = 0.42;
        lib.gemm_half_work = 4e9;
        lib.launch_us = 25.0;
    }
    sys.name = "DAWN (implicit scaling)";
    // the less-consistent part: visible run-to-run jitter
    sys.with_noise(0x1550, 0.35)
}

/// LUMI: EPYC 7A53 + MI250X (one GCD), AOCL on the CPU (g++ build),
/// rocBLAS on the GPU, Infinity Fabric with gpu-bind=closest, HSA_XNACK=1.
pub fn lumi() -> SystemModel {
    SystemModel {
        name: "LUMI",
        description:
            "AMD EPYC 7A53 + AMD MI250X (one GCD), AOCL 4.1 / rocBLAS 5.2.3, Infinity Fabric",
        cpu: epyc_7a53(),
        cpu_lib: aocl(),
        gpu: Some(mi250x_gcd()),
        gpu_lib: Some(rocblas()),
        link: Some(infinity_fabric()),
        usm: Some(usm_rocm()),
        noise: None,
    }
}

/// LUMI with OpenBLAS 0.3.24 instead of AOCL — the Fig 6 ablation that
/// restores multithreaded GEMV and removes every GEMV offload threshold.
pub fn lumi_openblas() -> SystemModel {
    let mut sys = lumi();
    sys.name = "LUMI (OpenBLAS)";
    sys.cpu_lib = openblas_lumi();
    sys
}

/// Isambard-AI: one GH200 superchip — Grace + H100 joined by NVLink-C2C,
/// NVPL on the CPU, cuBLAS on the GPU.
pub fn isambard_ai() -> SystemModel {
    SystemModel {
        name: "Isambard-AI",
        description:
            "NVIDIA GH200 Superchip (Grace 72c + H100), NVPL 24.7 / cuBLAS 24.5, NVLink-C2C",
        cpu: grace(),
        cpu_lib: nvpl(),
        gpu: Some(h100_gh200()),
        gpu_lib: Some(cublas()),
        link: Some(nvlink_c2c()),
        usm: Some(usm_cuda_c2c()),
        noise: None,
    }
}

/// Isambard-AI CPU with ArmPL 24.04 (Fig 3 comparison; CPU-only).
pub fn isambard_ai_armpl() -> SystemModel {
    SystemModel {
        name: "Isambard-AI (ArmPL)",
        description: "NVIDIA Grace with ArmPL 24.04 (CPU only)",
        cpu: grace(),
        cpu_lib: armpl(),
        gpu: None,
        gpu_lib: None,
        link: None,
        usm: None,
        noise: None,
    }
}

/// Isambard-AI CPU with single-threaded NVPL (Fig 3 comparison; CPU-only).
pub fn isambard_ai_nvpl_1t() -> SystemModel {
    SystemModel {
        name: "Isambard-AI (NVPL 1T)",
        description: "NVIDIA Grace with NVPL 24.7 pinned to one thread (CPU only)",
        cpu: grace(),
        cpu_lib: nvpl_single_thread(),
        gpu: None,
        gpu_lib: None,
        link: None,
        usm: None,
        noise: None,
    }
}

/// AMD MI300A — the APU the paper's introduction motivates: CPU and GPU
/// share one 5.3 TB/s unified HBM3 pool, so there is *no* host↔device copy
/// at all. Modelled with a cache-coherent-fabric "link" of negligible
/// latency and near-HBM bandwidth and a zero-cost USM (the hardware is
/// USM): the limiting case the GH200 approaches.
pub fn mi300a() -> SystemModel {
    SystemModel {
        name: "MI300A",
        description: "AMD MI300A APU: 24 Zen4 cores + CDNA3, unified 5.3 TB/s HBM3",
        cpu: CpuModel {
            name: "MI300A CPU (24x Zen 4)",
            cores: 24,
            freq_ghz: 3.7,
            fp64_flops_per_cycle_core: 16.0,
            fp32_ratio: 2.0,
            dram_gbs: 1200.0, // the CPU's share of the unified HBM
            single_core_gbs: 60.0,
            llc_bytes: 24e6,
            llc_gbs: 1500.0,
        },
        cpu_lib: CpuLibrary {
            name: "AOCL 4.2 (MI300A)",
            threads: 24,
            gemm_eff_max: 0.85,
            gemm_half_work: 3e7,
            gemm_half_work_f64: None,
            gemv_parallel: true,
            gemv_bw_eff: 0.8,
            call_overhead_us: 5.0,
            adaptive_threading: false,
            beta0_opt: true,
            warm_rate_boost: 1.2,
            shape_penalty: 0.6,
            quirks: vec![],
        },
        gpu: Some(GpuModel {
            name: "MI300A GPU (CDNA3)",
            fp32_tflops: 61.0,
            fp64_tflops: 61.0,
            hbm_gbs: 4000.0, // sustained share of the 5.3 TB/s pool
        }),
        gpu_lib: Some(GpuLibrary {
            name: "rocBLAS 6.x (MI300A)",
            launch_us: 5.0,
            gemm_eff_max: 0.8,
            gemm_half_work: 2e8,
            gemv_bw_eff: 0.8,
            gemv_m_half: 2000.0,
            beta0_opt: true,
            quirks: vec![],
        }),
        // zero-copy: the "transfer" is cache-coherent access
        link: Some(LinkModel {
            name: "Infinity Fabric (unified memory, zero-copy)",
            latency_us: 0.5,
            h2d_gbs: 2500.0,
            d2h_gbs: 2500.0,
        }),
        usm: Some(UsmModel {
            setup_us: 2.0,
            migration_gbs: 3000.0, // pages are already resident
            writeback_gbs: 3000.0,
            per_iter_penalty: 0.0,
        }),
        noise: None,
    }
}

/// A commodity A100-PCIe workstation: a mid-range host CPU feeding an A100
/// over PCIe gen4 x16 — the configuration most users actually own, with a
/// *weaker* link than any of the paper's systems. Useful as the
/// pessimistic contrast in offload what-ifs.
pub fn a100_workstation() -> SystemModel {
    SystemModel {
        name: "A100-workstation",
        description: "16-core workstation + NVIDIA A100 PCIe, PCIe gen4 x16",
        cpu: CpuModel {
            name: "16-core workstation CPU",
            cores: 16,
            freq_ghz: 3.0,
            fp64_flops_per_cycle_core: 16.0,
            fp32_ratio: 2.0,
            dram_gbs: 70.0,
            single_core_gbs: 25.0,
            llc_bytes: 24e6,
            llc_gbs: 600.0,
        },
        cpu_lib: CpuLibrary {
            name: "OpenBLAS 0.3.x",
            threads: 16,
            gemm_eff_max: 0.8,
            gemm_half_work: 2e7,
            gemm_half_work_f64: None,
            gemv_parallel: true,
            gemv_bw_eff: 0.75,
            call_overhead_us: 6.0,
            adaptive_threading: false,
            beta0_opt: true,
            warm_rate_boost: 1.5,
            shape_penalty: 0.6,
            quirks: vec![],
        },
        gpu: Some(GpuModel {
            name: "NVIDIA A100 PCIe 80GB",
            fp32_tflops: 19.5,
            fp64_tflops: 9.7,
            hbm_gbs: 1700.0,
        }),
        gpu_lib: Some(GpuLibrary {
            name: "cuBLAS 12.x",
            launch_us: 4.0,
            gemm_eff_max: 0.85,
            gemm_half_work: 3e8,
            gemv_bw_eff: 0.8,
            gemv_m_half: 900.0,
            beta0_opt: true,
            quirks: vec![],
        }),
        link: Some(LinkModel {
            name: "PCIe gen4 x16",
            latency_us: 10.0,
            h2d_gbs: 25.0,
            d2h_gbs: 24.0,
        }),
        usm: Some(UsmModel {
            setup_us: 30.0,
            migration_gbs: 20.0,
            writeback_gbs: 20.0,
            per_iter_penalty: 0.03,
        }),
        noise: None,
    }
}

/// The three production systems of the evaluation, in the paper's order.
pub fn evaluation_systems() -> Vec<SystemModel> {
    vec![dawn(), lumi(), isambard_ai()]
}

// ---------------------------------------------------------------------------
// Table I device/library pairs (α/β optimisation study)
// ---------------------------------------------------------------------------

/// NVIDIA A100 40GB SXM with cuBLAS (Table I row 1). GPU-only system; the
/// Table I timing is kernel time for device-resident data.
pub fn a100_cublas() -> SystemModel {
    SystemModel {
        name: "A100-cuBLAS",
        description: "NVIDIA A100 40GB SXM, cuBLAS 24.3",
        cpu: xeon_8468(), // host irrelevant for the GPU-only measurement
        cpu_lib: onemkl_cpu(),
        gpu: Some(GpuModel {
            name: "NVIDIA A100 40GB SXM",
            fp32_tflops: 19.5,
            fp64_tflops: 9.7,
            hbm_gbs: 680.0, // effective streamed bandwidth for skinny GEMM
        }),
        gpu_lib: Some(GpuLibrary {
            name: "cuBLAS 24.3",
            launch_us: 5.0,
            gemm_eff_max: 0.85,
            gemm_half_work: 1e9,
            gemv_bw_eff: 0.8,
            gemv_m_half: 800.0,
            beta0_opt: true,
            quirks: vec![],
        }),
        link: Some(pcie5()),
        usm: None,
        noise: None,
    }
}

/// AMD MI250X with rocBLAS (Table I row 2) — strikingly slow for the
/// skinny K = 4 SGEMM (188 ms vs the A100's 39 ms in the paper).
pub fn mi250x_rocblas_table1() -> SystemModel {
    SystemModel {
        name: "MI250X-rocBLAS",
        description: "AMD MI250X, rocBLAS 5.2.3",
        cpu: epyc_7a53(),
        cpu_lib: aocl(),
        gpu: Some(GpuModel {
            name: "AMD MI250X",
            fp32_tflops: 21.0,
            fp64_tflops: 21.0,
            hbm_gbs: 143.0, // rocBLAS's poor skinny-GEMM streaming rate
        }),
        gpu_lib: Some(rocblas()),
        link: Some(infinity_fabric()),
        usm: None,
        noise: None,
    }
}

/// Intel Max 1550 with oneMKL (Table I row 3).
pub fn max1550_onemkl_table1() -> SystemModel {
    SystemModel {
        name: "Max1550-oneMKL",
        description: "Intel Data Center GPU Max 1550, oneMKL 2024.1",
        cpu: xeon_8468(),
        cpu_lib: onemkl_cpu(),
        gpu: Some(GpuModel {
            name: "Intel Data Center GPU Max 1550",
            fp32_tflops: 40.0,
            fp64_tflops: 20.0,
            hbm_gbs: 810.0,
        }),
        gpu_lib: Some(onemkl_gpu()),
        link: Some(pcie5()),
        usm: None,
        noise: None,
    }
}

/// Xeon 8468 running oneMKL on a single thread (Table I row 4).
pub fn xeon8468_onemkl_1t() -> SystemModel {
    let mut lib = onemkl_cpu();
    lib.threads = 1;
    lib.call_overhead_us = 1.0;
    lib.quirks.clear();
    SystemModel {
        name: "Xeon8468-oneMKL-1T",
        description: "Intel Xeon Platinum 8468, oneMKL 2024.1, single thread",
        cpu: xeon_8468(),
        cpu_lib: lib,
        gpu: None,
        gpu_lib: None,
        link: None,
        usm: None,
        noise: None,
    }
}

/// AMD EPYC 7543P running AOCL on a single thread (Table I row 5).
pub fn epyc7543_aocl_1t() -> SystemModel {
    let mut lib = aocl();
    lib.threads = 1;
    lib.call_overhead_us = 1.0;
    // AOCL 4.2 in Table I does NOT show the β=0 saving as strongly; the
    // paper's numbers still show the 1.34x β effect, so keep the opt.
    SystemModel {
        name: "EPYC7543-AOCL-1T",
        description: "AMD EPYC 7543P, AOCL 4.2, single thread",
        cpu: CpuModel {
            name: "AMD EPYC 7543P",
            cores: 32,
            freq_ghz: 2.8,
            fp64_flops_per_cycle_core: 16.0,
            fp32_ratio: 2.0,
            dram_gbs: 170.0,
            single_core_gbs: 6.7, // Zen3 under AOCL's skinny-GEMM path
            llc_bytes: 180e6,
            llc_gbs: 1400.0,
        },
        cpu_lib: lib,
        gpu: None,
        gpu_lib: None,
        link: None,
        usm: None,
        noise: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::BlasCall;
    use crate::offload::Offload;

    #[test]
    fn socket_flops_per_cycle_match_paper() {
        // §IV-A quotes 1536 (DAWN), 896 (LUMI), 1152 (Isambard-AI)
        assert_eq!(xeon_8468().socket_flops_per_cycle(), 1536.0);
        assert_eq!(epyc_7a53().socket_flops_per_cycle(), 896.0);
        assert_eq!(grace().socket_flops_per_cycle(), 1152.0);
    }

    #[test]
    fn all_evaluation_systems_have_gpus() {
        for sys in evaluation_systems() {
            assert!(sys.has_gpu(), "{} must model a GPU", sys.name);
            assert!(sys.usm.is_some(), "{} must model USM", sys.name);
        }
    }

    #[test]
    fn socket_width_ordering_matches_paper() {
        // the paper compares sockets by FLOPs/cycle: 1536 > 1152 > 896
        let d = dawn().cpu.socket_flops_per_cycle();
        let i = isambard_ai().cpu.socket_flops_per_cycle();
        let l = lumi().cpu.socket_flops_per_cycle();
        assert!(d > i && i > l, "{d} > {i} > {l} violated");
        // and LUMI has by far the weakest absolute peak
        let lp = lumi().cpu.peak_gflops(Precision::F64, 56);
        assert!(lp < dawn().cpu.peak_gflops(Precision::F64, 48));
        assert!(lp < isambard_ai().cpu.peak_gflops(Precision::F64, 72));
    }

    #[test]
    fn c2c_transfers_are_an_order_faster_than_pcie() {
        let bytes = 64e6;
        let c2c = nvlink_c2c().to_device_seconds(bytes);
        let pcie = pcie5().to_device_seconds(bytes);
        assert!(pcie / c2c > 5.0);
    }

    #[test]
    fn mkl_drop_visible_on_dawn_cpu_curve() {
        let sys = dawn();
        let g = |s: usize| sys.cpu_gflops(&BlasCall::gemm(Precision::F32, s, s, s), 1);
        // the cliff: 629 achieves far less than 628 (Fig 2)
        assert!(g(629) < 0.6 * g(628), "628: {}, 629: {}", g(628), g(629));
        // recovery: well past the cliff the curve is healthy again
        assert!(g(3500) > g(628));
    }

    #[test]
    fn lumi_serial_gemv_vs_openblas() {
        // Fig 6: OpenBLAS DGEMV far outperforms AOCL at large sizes,
        // underperforms at small sizes.
        let aocl_sys = lumi();
        let ob_sys = lumi_openblas();
        let big = BlasCall::gemv(Precision::F64, 3000, 3000);
        assert!(ob_sys.cpu_gflops(&big, 128) > 3.0 * aocl_sys.cpu_gflops(&big, 128));
        let small = BlasCall::gemv(Precision::F64, 150, 150);
        assert!(ob_sys.cpu_gflops(&small, 128) < aocl_sys.cpu_gflops(&small, 128));
    }

    #[test]
    fn isambard_gpu_floor_is_tiny() {
        // GH200's C2C makes the smallest GPU round trips ~10 us; on DAWN
        // the same round trip costs several times more.
        let c = BlasCall::gemm(Precision::F32, 8, 8, 8);
        let isam = isambard_ai()
            .gpu_seconds(&c, 1, Offload::TransferOnce)
            .unwrap();
        let dawn_t = dawn().gpu_seconds(&c, 1, Offload::TransferOnce).unwrap();
        assert!(isam < 20e-6, "{isam}");
        assert!(dawn_t > 2.0 * isam);
    }

    #[test]
    fn rocblas_k_jump_only_for_sgemm_32() {
        let sys = lumi();
        let g32 = |k: usize| {
            sys.gpu_gflops(
                &BlasCall::gemm(Precision::F32, 32, 32, k),
                8,
                Offload::TransferOnce,
            )
            .unwrap()
        };
        // the jump: K = 2560 runs disproportionately faster
        assert!(g32(2560) > 2.0 * g32(2304));
        // DGEMM flat-lines instead
        let d = |k: usize| {
            sys.gpu_gflops(
                &BlasCall::gemm(Precision::F64, 32, 32, k),
                8,
                Offload::TransferOnce,
            )
            .unwrap()
        };
        assert!(
            d(2560) < 1.5 * d(512),
            "DGEMM must not jump: {} vs {}",
            d(2560),
            d(512)
        );
    }

    #[test]
    fn implicit_scaling_underperforms_explicit() {
        // Fig 7: implicit scaling is slower despite 2x the hardware
        let exp = dawn();
        let imp = dawn_implicit_scaling();
        let c = BlasCall::gemm(Precision::F32, 2048, 2048, 2048);
        let ge = exp.gpu_gflops(&c, 32, Offload::TransferOnce).unwrap();
        let gi = imp.gpu_gflops(&c, 32, Offload::TransferOnce).unwrap();
        assert!(gi < 0.8 * ge, "implicit {gi} vs explicit {ge}");
    }

    #[test]
    fn mi300a_erases_the_offload_question() {
        // unified memory: even 1-iteration GEMM offloads at tiny sizes,
        // and GEMV offloads at 1 iteration — which no discrete system does
        let apu = mi300a();
        let small = BlasCall::gemm(Precision::F32, 64, 64, 64);
        assert!(
            apu.gpu_seconds(&small, 1, Offload::TransferOnce).unwrap() < apu.cpu_seconds(&small, 1)
        );
        let big_gemv = BlasCall::gemv(Precision::F32, 4000, 4000);
        assert!(
            apu.gpu_seconds(&big_gemv, 1, Offload::TransferOnce)
                .unwrap()
                < apu.cpu_seconds(&big_gemv, 1),
            "zero-copy makes one-shot GEMV pay on the APU"
        );
        // and "Transfer-Always" is nearly free: it prices within 25% of Once
        let c = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        let once = apu.gpu_seconds(&c, 32, Offload::TransferOnce).unwrap();
        let always = apu.gpu_seconds(&c, 32, Offload::TransferAlways).unwrap();
        assert!(always / once < 1.25, "{}", always / once);
    }

    #[test]
    fn a100_workstation_is_the_pessimistic_contrast() {
        // the gen4 link is weaker than every paper system: its square-GEMM
        // 1-iteration crossover sits hundreds of sizes up, and one-shot
        // GEMV is hopeless
        let ws = a100_workstation();
        let c = BlasCall::gemm(Precision::F32, 200, 200, 200);
        assert!(ws.gpu_seconds(&c, 1, Offload::TransferOnce).unwrap() > ws.cpu_seconds(&c, 1));
        let v = BlasCall::gemv(Precision::F64, 4096, 4096);
        assert!(
            ws.gpu_seconds(&v, 1, Offload::TransferOnce).unwrap() > 2.0 * ws.cpu_seconds(&v, 1)
        );
    }

    #[test]
    fn table1_beta_effect_band() {
        // Table I: β=0 → 1.2x–1.7x speedup vs β=2; α makes ~no difference.
        for sys in [
            a100_cublas(),
            mi250x_rocblas_table1(),
            max1550_onemkl_table1(),
        ] {
            let base = BlasCall::gemm(Precision::F32, 8192, 8192, 4);
            let t10 = sys.gpu_seconds(&base, 100, Offload::TransferOnce).unwrap();
            let t40 = sys
                .gpu_seconds(&base.with_scalars(4.0, 0.0), 100, Offload::TransferOnce)
                .unwrap();
            let t12 = sys
                .gpu_seconds(&base.with_scalars(1.0, 2.0), 100, Offload::TransferOnce)
                .unwrap();
            let speedup = t12 / t10;
            // the paper's observed band is 1.2x–1.7x; a pure-bandwidth
            // device in the model tops out at 2x (one extra read of C)
            assert!(speedup > 1.05 && speedup < 2.05, "{}: {speedup}", sys.name);
            assert!((t40 / t10 - 1.0).abs() < 0.02, "{}: alpha effect", sys.name);
        }
        for sys in [xeon8468_onemkl_1t(), epyc7543_aocl_1t()] {
            let base = BlasCall::gemm(Precision::F32, 8192, 8192, 4);
            let t10 = sys.cpu_seconds(&base, 100);
            let t12 = sys.cpu_seconds(&base.with_scalars(1.0, 2.0), 100);
            let speedup = t12 / t10;
            assert!(speedup > 1.1 && speedup < 1.8, "{}: {speedup}", sys.name);
        }
    }
}
