//! Envelope fitting: build a performance model from *measured* samples.
//!
//! The paper positions GPU-BLOB against analytical selectors (Chikin et
//! al.) precisely because an empirical benchmark "can more easily measure
//! the performance of new architectures". This module closes the loop in
//! the other direction: take measurements (e.g. from the
//! [`HostCpu`](../../blob_core/backend/struct.HostCpu.html) backend) and
//! fit the roofline-envelope parameters, so a user can calibrate a
//! [`SystemModel`](crate::SystemModel) of *their own machine* and then ask
//! it offload-threshold questions about hardware they are considering.
//!
//! The envelope `t(w) = w/R + c` (sustained rate `R`, fixed per-call cost
//! `c`) is affine in the work `w`, so the fit is ordinary least squares —
//! deterministic, closed-form, and exact on noise-free data.

/// One measured kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// FLOPs the call executed.
    pub work: f64,
    /// Measured seconds for one execution.
    pub seconds: f64,
}

/// A fitted execution envelope: `t(w) = w / rate + fixed_cost`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Sustained rate in FLOP/s.
    pub rate: f64,
    /// Fixed per-call cost in seconds (dispatch, fork/join, ramp).
    pub fixed_cost: f64,
    /// Coefficient of determination of the fit (1 = perfect).
    pub r_squared: f64,
}

impl Envelope {
    /// Predicted seconds for a call of `work` FLOPs.
    pub fn predict(&self, work: f64) -> f64 {
        work / self.rate + self.fixed_cost
    }

    /// Achieved fraction of a theoretical peak (GFLOP/s).
    pub fn efficiency_vs(&self, peak_gflops: f64) -> f64 {
        self.rate / (peak_gflops * 1e9)
    }
}

/// Fits `t(w) = w/rate + fixed_cost` by least squares.
///
/// Returns `None` for fewer than 2 samples, a degenerate spread of `work`
/// values, or a fit with non-positive rate (meaningless measurements).
/// A negative fitted intercept (possible with noise) is clamped to 0.
pub fn fit_envelope(samples: &[Sample]) -> Option<Envelope> {
    let n = samples.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let sum_w: f64 = samples.iter().map(|s| s.work).sum();
    let sum_t: f64 = samples.iter().map(|s| s.seconds).sum();
    let mean_w = sum_w / nf;
    let mean_t = sum_t / nf;
    let sxx: f64 = samples.iter().map(|s| (s.work - mean_w).powi(2)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let sxy: f64 = samples
        .iter()
        .map(|s| (s.work - mean_w) * (s.seconds - mean_t))
        .sum();
    let slope = sxy / sxx;
    if slope <= 0.0 {
        return None;
    }
    let intercept = (mean_t - slope * mean_w).max(0.0);
    let rate = 1.0 / slope;
    // r^2 against the (possibly clamped) model
    let ss_tot: f64 = samples.iter().map(|s| (s.seconds - mean_t).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|s| {
            let pred = s.work * slope + intercept;
            (s.seconds - pred).powi(2)
        })
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(Envelope {
        rate,
        fixed_cost: intercept,
        r_squared,
    })
}

/// Builds a [`CpuLibrary`](crate::CpuLibrary) whose GEMM pricing reproduces
/// a fitted envelope on a given CPU: `eff_max` set so the saturated rate
/// matches, `call_overhead` from the fixed cost, a small half-work (the
/// ramp is already folded into the measured envelope).
pub fn library_from_envelope(
    name: &'static str,
    envelope: &Envelope,
    cpu: &crate::CpuModel,
    precision: crate::Precision,
) -> crate::CpuLibrary {
    let peak = cpu.peak_gflops(precision, cpu.cores) * 1e9;
    crate::CpuLibrary {
        name,
        threads: cpu.cores,
        gemm_eff_max: (envelope.rate / peak).clamp(0.01, 0.98),
        gemm_half_work: 1e6, // envelope already absorbs the ramp
        gemm_half_work_f64: None,
        gemv_parallel: true,
        gemv_bw_eff: 0.8,
        call_overhead_us: envelope.fixed_cost * 1e6,
        adaptive_threading: false,
        beta0_opt: true,
        warm_rate_boost: 1.0,
        shape_penalty: 0.0,
        quirks: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(rate: f64, fixed: f64, works: &[f64]) -> Vec<Sample> {
        works
            .iter()
            .map(|&w| Sample {
                work: w,
                seconds: w / rate + fixed,
            })
            .collect()
    }

    #[test]
    fn exact_fit_on_noise_free_data() {
        let samples = synth(2.5e12, 8e-6, &[1e6, 1e7, 1e8, 1e9, 5e9]);
        let e = fit_envelope(&samples).unwrap();
        assert!((e.rate / 2.5e12 - 1.0).abs() < 1e-9);
        assert!((e.fixed_cost - 8e-6).abs() < 1e-12);
        assert!(e.r_squared > 0.999999);
    }

    #[test]
    fn prediction_round_trip() {
        let samples = synth(1e12, 5e-6, &[1e7, 1e8, 1e9]);
        let e = fit_envelope(&samples).unwrap();
        for s in &samples {
            assert!((e.predict(s.work) - s.seconds).abs() / s.seconds < 1e-9);
        }
        assert!((e.efficiency_vs(2000.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tolerates_measurement_noise() {
        // deterministic +-5% "noise"
        let mut samples = synth(3e12, 10e-6, &[1e7, 5e7, 1e8, 5e8, 1e9, 5e9, 1e10]);
        for (i, s) in samples.iter_mut().enumerate() {
            let jitter = 1.0 + 0.05 * if i % 2 == 0 { 1.0 } else { -1.0 };
            s.seconds *= jitter;
        }
        let e = fit_envelope(&samples).unwrap();
        assert!((e.rate / 3e12 - 1.0).abs() < 0.1, "rate {}", e.rate);
        assert!(e.r_squared > 0.98);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(fit_envelope(&[]).is_none());
        assert!(fit_envelope(&[Sample {
            work: 1e6,
            seconds: 1e-3
        }])
        .is_none());
        // all-identical work: no slope identifiable
        let flat = vec![
            Sample {
                work: 1e6,
                seconds: 1e-3
            };
            5
        ];
        assert!(fit_envelope(&flat).is_none());
        // decreasing time with work: nonsense measurements
        let nonsense = vec![
            Sample {
                work: 1e6,
                seconds: 2.0,
            },
            Sample {
                work: 1e9,
                seconds: 1.0,
            },
        ];
        assert!(fit_envelope(&nonsense).is_none());
    }

    #[test]
    fn negative_intercept_clamped() {
        // two points implying a tiny negative intercept after noise
        let samples = vec![
            Sample {
                work: 1e9,
                seconds: 1.0e-3,
            },
            Sample {
                work: 2e9,
                seconds: 2.1e-3,
            },
        ];
        let e = fit_envelope(&samples).unwrap();
        assert!(e.fixed_cost >= 0.0);
    }

    #[test]
    fn fitted_library_prices_like_the_envelope() {
        use crate::{BlasCall, Precision};
        let cpu = crate::CpuModel {
            name: "fit-target",
            cores: 16,
            freq_ghz: 3.0,
            fp64_flops_per_cycle_core: 16.0,
            fp32_ratio: 2.0,
            dram_gbs: 100.0,
            single_core_gbs: 20.0,
            llc_bytes: 32e6,
            llc_gbs: 800.0,
        };
        // envelope: 60% of f64 peak, 4us fixed
        let peak = cpu.peak_gflops(Precision::F64, 16) * 1e9;
        let env = Envelope {
            rate: 0.6 * peak,
            fixed_cost: 4e-6,
            r_squared: 1.0,
        };
        let lib = library_from_envelope("fitted", &env, &cpu, Precision::F64);
        let call = BlasCall::gemm(Precision::F64, 800, 800, 800);
        let modelled = crate::cpu::cpu_seconds(&cpu, &lib, &call, 1);
        let predicted = env.predict(call.paper_flops());
        assert!(
            (modelled / predicted - 1.0).abs() < 0.1,
            "{modelled} vs {predicted}"
        );
    }
}
