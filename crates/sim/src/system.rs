//! A complete heterogeneous node: one CPU socket plus library, one GPU
//! device plus library, the interconnect between them, and the vendor's
//! USM behaviour: everything needed to price a GPU-BLOB measurement.

use crate::call::BlasCall;
use crate::cpu::{cpu_seconds, CpuLibrary, CpuModel};
use crate::firsttouch::FirstTouchModel;
use crate::gpu::{gpu_kernel_seconds, GpuLibrary, GpuModel};
use crate::link::LinkModel;
use crate::offload::Offload;
use crate::usm::UsmModel;

/// Deterministic measurement noise: each (call, device) pair gets a fixed
/// multiplicative jitter of up to ±`amplitude`/2. Off by default so tables
/// regenerate bit-identically; enable to stress the threshold detector's
/// noise tolerance the way real runs would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Noise {
    /// Seed mixed into every jitter hash.
    pub seed: u64,
    /// Total jitter width, e.g. 0.05 for ±2.5 %.
    pub amplitude: f64,
}

impl Noise {
    /// The jitter multiplier for a (call, device-tag) pair.
    fn factor(&self, call: &BlasCall, tag: u64) -> f64 {
        let (m, n, k) = call.kernel.dims();
        let mut h = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(tag.wrapping_mul(0xff51afd7ed558ccd));
        h ^= (m as u64).wrapping_mul(0xc4ceb9fe1a85ec53);
        h ^= (n as u64).rotate_left(17).wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= (k as u64).rotate_left(33).wrapping_mul(0x94d049bb133111eb);
        h ^= h >> 29;
        h = h.wrapping_mul(0xbf58476d1ce4e5b9);
        h ^= h >> 32;
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        1.0 + self.amplitude * (unit - 0.5)
    }
}

/// One modelled heterogeneous HPC node.
///
/// GPU-side fields are optional so CPU-only configurations (the paper's
/// LUMI CPU-only build, or ArmPL/NVPL comparisons in Fig 3) can be
/// expressed.
#[derive(Debug, Clone)]
pub struct SystemModel {
    /// System name, e.g. `"Isambard-AI"`.
    pub name: &'static str,
    /// One-line hardware summary (Table II row).
    pub description: &'static str,
    /// CPU socket hardware model.
    pub cpu: CpuModel,
    /// CPU BLAS library (efficiency curve + quirks).
    pub cpu_lib: CpuLibrary,
    /// GPU device hardware model, if the node has one.
    pub gpu: Option<GpuModel>,
    /// GPU BLAS library, present iff `gpu` is.
    pub gpu_lib: Option<GpuLibrary>,
    /// Host–device interconnect, present iff `gpu` is.
    pub link: Option<LinkModel>,
    /// Unified-shared-memory behaviour, if the vendor supports USM.
    pub usm: Option<UsmModel>,
    /// Optional deterministic measurement jitter.
    pub noise: Option<Noise>,
}

impl SystemModel {
    /// Seconds for `iters` CPU iterations of `call`.
    pub fn cpu_seconds(&self, call: &BlasCall, iters: u32) -> f64 {
        let t = cpu_seconds(&self.cpu, &self.cpu_lib, call, iters);
        match self.noise {
            Some(n) => t * n.factor(call, 0x0C0FFEE),
            None => t,
        }
    }

    /// Seconds for `iters` GPU iterations of `call` under `offload`, or
    /// `None` for CPU-only configurations. Includes all host↔device data
    /// movement, matching the paper's GPU timing rule (§III-A).
    pub fn gpu_seconds(&self, call: &BlasCall, iters: u32, offload: Offload) -> Option<f64> {
        let gpu = self.gpu.as_ref()?;
        let lib = self.gpu_lib.as_ref()?;
        let link = self.link.as_ref()?;
        let kernel = gpu_kernel_seconds(gpu, lib, call);
        let bytes_in = call.bytes_to_device();
        let bytes_out = call.bytes_from_device();
        let t = match offload {
            Offload::TransferOnce => {
                link.to_device_seconds(bytes_in)
                    + iters as f64 * kernel
                    + link.from_device_seconds(bytes_out)
            }
            Offload::TransferAlways => {
                iters as f64 * (link.round_trip_seconds(bytes_in, bytes_out) + kernel)
            }
            Offload::Unified => {
                let usm = self.usm.as_ref()?;
                usm.total_seconds(bytes_in, bytes_out, kernel, iters)
            }
        };
        Some(match self.noise {
            Some(n) => t * n.factor(call, 0xD15C0 + offload as u64),
            None => t,
        })
    }

    /// CPU GFLOP/s over `iters` iterations using the paper's FLOPs formula.
    pub fn cpu_gflops(&self, call: &BlasCall, iters: u32) -> f64 {
        let t = self.cpu_seconds(call, iters);
        iters as f64 * call.paper_flops() / t / 1e9
    }

    /// GPU GFLOP/s (including transfer time) over `iters` iterations.
    pub fn gpu_gflops(&self, call: &BlasCall, iters: u32, offload: Offload) -> Option<f64> {
        let t = self.gpu_seconds(call, iters, offload)?;
        Some(iters as f64 * call.paper_flops() / t / 1e9)
    }

    /// Pure device-side kernel seconds for one execution of `call` —
    /// no transfer, no migration — or `None` for CPU-only
    /// configurations. This is the quantity the dispatch plane combines
    /// with its own first-touch accounting.
    pub fn gpu_kernel_seconds(&self, call: &BlasCall) -> Option<f64> {
        let gpu = self.gpu.as_ref()?;
        let lib = self.gpu_lib.as_ref()?;
        let t = gpu_kernel_seconds(gpu, lib, call);
        Some(match self.noise {
            Some(n) => t * n.factor(call, 0xFA57_0DE),
            None => t,
        })
    }

    /// First-touch page-migration behaviour derived from this system's
    /// USM model, or `None` when the vendor has no USM support.
    pub fn first_touch_model(&self) -> Option<FirstTouchModel> {
        self.usm.as_ref().map(FirstTouchModel::from_usm)
    }

    /// True when this configuration can time GPU runs.
    pub fn has_gpu(&self) -> bool {
        self.gpu.is_some() && self.gpu_lib.is_some() && self.link.is_some()
    }

    /// Returns a copy with deterministic noise enabled.
    pub fn with_noise(mut self, seed: u64, amplitude: f64) -> Self {
        self.noise = Some(Noise { seed, amplitude });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use blob_blas::scalar::Precision;

    #[test]
    fn cpu_only_system_has_no_gpu_times() {
        let sys = presets::isambard_ai_armpl();
        assert!(!sys.has_gpu());
        let c = BlasCall::gemm(Precision::F32, 64, 64, 64);
        assert!(sys.gpu_seconds(&c, 1, Offload::TransferOnce).is_none());
        assert!(sys.cpu_seconds(&c, 1) > 0.0);
    }

    #[test]
    fn transfer_always_costs_at_least_transfer_once() {
        let sys = presets::dawn();
        let c = BlasCall::gemm(Precision::F32, 512, 512, 512);
        for iters in [1u32, 8, 32, 128] {
            let once = sys.gpu_seconds(&c, iters, Offload::TransferOnce).unwrap();
            let always = sys.gpu_seconds(&c, iters, Offload::TransferAlways).unwrap();
            // equal at iters = 1 up to float addition order
            assert!(
                always >= once * (1.0 - 1e-12),
                "iters={iters}: {always} < {once}"
            );
        }
    }

    #[test]
    fn transfer_always_gap_grows_with_iterations() {
        let sys = presets::dawn();
        let c = BlasCall::gemm(Precision::F32, 512, 512, 512);
        let gap = |i: u32| {
            sys.gpu_seconds(&c, i, Offload::TransferAlways).unwrap()
                - sys.gpu_seconds(&c, i, Offload::TransferOnce).unwrap()
        };
        assert!(gap(8) > gap(1));
        assert!(gap(128) > gap(8));
    }

    #[test]
    fn gflops_consistent_with_seconds() {
        let sys = presets::lumi();
        let c = BlasCall::gemm(Precision::F64, 1024, 1024, 1024);
        let t = sys.cpu_seconds(&c, 4);
        let g = sys.cpu_gflops(&c, 4);
        assert!((g - 4.0 * c.paper_flops() / t / 1e9).abs() < 1e-9);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let sys = presets::dawn().with_noise(42, 0.05);
        let base = presets::dawn();
        let c = BlasCall::gemm(Precision::F32, 700, 700, 700);
        let t1 = sys.cpu_seconds(&c, 1);
        let t2 = sys.cpu_seconds(&c, 1);
        assert_eq!(t1, t2, "noise must be deterministic");
        let t0 = base.cpu_seconds(&c, 1);
        assert!((t1 / t0 - 1.0).abs() <= 0.025 + 1e-12);
    }

    #[test]
    fn noise_differs_between_devices_and_sizes() {
        let sys = presets::dawn().with_noise(7, 0.05);
        let c1 = BlasCall::gemm(Precision::F32, 700, 700, 700);
        let c2 = BlasCall::gemm(Precision::F32, 701, 701, 701);
        let r1 = sys.cpu_seconds(&c1, 1) / presets::dawn().cpu_seconds(&c1, 1);
        let r2 = sys.cpu_seconds(&c2, 1) / presets::dawn().cpu_seconds(&c2, 1);
        assert_ne!(r1, r2);
    }
}
