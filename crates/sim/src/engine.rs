//! CPU matrix-engine modelling — the paper's second future-work item (§V):
//! "we aim to analyse the impact of CPU matrix engines on the offload
//! threshold", naming Intel AMX, IBM MMA, Apple AMX and Arm SME.
//!
//! A matrix engine multiplies the socket's GEMM throughput (dramatically at
//! low precision, moderately at FP64 — SME and MMA have FP64 tiles, AMX
//! does not) at the cost of a larger saturation size: tile engines need
//! big, well-shaped operands before they beat the plain SIMD pipes, so the
//! efficiency ramp's half-work grows.
//!
//! [`with_matrix_engine`] upgrades any [`SystemModel`]'s CPU; the
//! `ext_matrix_engine` experiment binary quantifies the threshold shift.

use crate::system::SystemModel;

/// A CPU matrix engine's effect on GEMM throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixEngine {
    /// Name, e.g. `"Arm SME (hypothetical Grace successor)"`.
    pub name: &'static str,
    /// Multiplier on FP32 GEMM peak.
    pub f32_mult: f64,
    /// Multiplier on FP64 GEMM peak (1.0 = engine has no FP64 tiles).
    pub f64_mult: f64,
    /// Multiplier on the library's GEMM half-work: engines need larger
    /// problems to saturate.
    pub half_work_mult: f64,
}

impl MatrixEngine {
    /// An SME-class engine: 4× FP32, 2× FP64, saturating twice as late.
    pub fn sme_class() -> Self {
        Self {
            name: "Arm SME-class engine",
            f32_mult: 4.0,
            f64_mult: 2.0,
            half_work_mult: 2.0,
        }
    }

    /// An AMX-class engine: 8× FP32 (via tile BF16/INT8-style throughput
    /// applied to single precision workloads), no FP64 tiles.
    pub fn amx_class() -> Self {
        Self {
            name: "Intel AMX-class engine",
            f32_mult: 8.0,
            f64_mult: 1.0,
            half_work_mult: 3.0,
        }
    }

    /// An MMA-class engine: modest, precision-symmetric gain.
    pub fn mma_class() -> Self {
        Self {
            name: "IBM MMA-class engine",
            f32_mult: 2.0,
            f64_mult: 2.0,
            half_work_mult: 1.5,
        }
    }
}

/// Returns a copy of `sys` whose CPU carries the matrix engine.
///
/// FP64 throughput scales by `f64_mult`; the FP32:FP64 ratio scales by
/// `f32_mult / f64_mult` so FP32 lands at `f32_mult` overall; the library's
/// GEMM ramp slows by `half_work_mult`. GEMV is untouched — matrix engines
/// do not feed a bandwidth-bound kernel any faster (the paper's framing:
/// the engines target GEMM).
pub fn with_matrix_engine(mut sys: SystemModel, engine: MatrixEngine) -> SystemModel {
    sys.cpu.fp64_flops_per_cycle_core *= engine.f64_mult;
    sys.cpu.fp32_ratio *= engine.f32_mult / engine.f64_mult;
    // The slower saturation only affects precisions the engine executes;
    // FP64 keeps the SIMD ramp when the engine has no FP64 tiles.
    let f64_half = sys.cpu_lib.half_work_for(crate::Precision::F64);
    sys.cpu_lib.gemm_half_work_f64 = Some(if engine.f64_mult > 1.0 {
        f64_half * engine.half_work_mult
    } else {
        f64_half
    });
    sys.cpu_lib.gemm_half_work *= engine.half_work_mult;
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::call::BlasCall;
    use crate::presets;
    use crate::{Offload, Precision};

    #[test]
    fn engine_multiplies_gemm_peak() {
        let base = presets::isambard_ai();
        let boosted = with_matrix_engine(base.clone(), MatrixEngine::sme_class());
        assert_eq!(
            boosted.cpu.peak_gflops(Precision::F64, 72),
            2.0 * base.cpu.peak_gflops(Precision::F64, 72)
        );
        assert_eq!(
            boosted.cpu.peak_gflops(Precision::F32, 72),
            4.0 * base.cpu.peak_gflops(Precision::F32, 72) / 2.0 * 2.0
        );
    }

    #[test]
    fn amx_class_leaves_fp64_alone() {
        let base = presets::dawn();
        let boosted = with_matrix_engine(base.clone(), MatrixEngine::amx_class());
        assert_eq!(
            boosted.cpu.peak_gflops(Precision::F64, 48),
            base.cpu.peak_gflops(Precision::F64, 48)
        );
        assert_eq!(
            boosted.cpu.peak_gflops(Precision::F32, 48),
            8.0 * base.cpu.peak_gflops(Precision::F32, 48)
        );
    }

    #[test]
    fn engine_speeds_up_large_gemm_not_gemv() {
        let base = presets::isambard_ai();
        let boosted = with_matrix_engine(base.clone(), MatrixEngine::sme_class());
        let big = BlasCall::gemm(Precision::F32, 3000, 3000, 3000);
        assert!(boosted.cpu_seconds(&big, 1) < 0.45 * base.cpu_seconds(&big, 1));
        let v = BlasCall::gemv(Precision::F32, 3000, 3000);
        assert_eq!(boosted.cpu_seconds(&v, 1), base.cpu_seconds(&v, 1));
    }

    #[test]
    fn engine_raises_the_offload_threshold() {
        // the future-work question, answered in-model: a stronger CPU
        // pushes the GPU crossover to larger sizes
        let base = presets::isambard_ai();
        let boosted = with_matrix_engine(base.clone(), MatrixEngine::sme_class());
        let threshold = |sys: &crate::SystemModel| {
            (1..=1024)
                .map(|s| {
                    let c = BlasCall::gemm(Precision::F32, s, s, s);
                    (
                        sys.cpu_seconds(&c, 8),
                        sys.gpu_seconds(&c, 8, Offload::TransferOnce).unwrap(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let first_durable =
            |pts: &[(f64, f64)]| (0..pts.len()).find(|&i| pts[i..].iter().all(|&(c, g)| g <= c));
        let t_base = first_durable(&threshold(&base)).expect("base threshold");
        let t_boost = first_durable(&threshold(&boosted)).expect("boosted threshold");
        assert!(
            t_boost > t_base,
            "engine must raise the threshold: {t_base} -> {t_boost}"
        );
    }
}
