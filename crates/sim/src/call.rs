//! A device-neutral description of one BLAS invocation — the unit every
//! performance model in this crate prices.
//!
//! Carries the kernel kind and dimensions, the precision, and the α/β
//! scalars (whose values change the work actually executed, per the paper's
//! Table I study: production libraries skip the `β·C` and `AB + C` work when
//! `β = 0`).

use blob_blas::scalar::Precision;

/// Which BLAS kernel a call invokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// `C ← α·A·B + β·C` with `A: m×k`, `B: k×n`, `C: m×n`.
    Gemm {
        /// Rows of `A` and `C`.
        m: usize,
        /// Columns of `B` and `C`.
        n: usize,
        /// Inner (contraction) dimension.
        k: usize,
    },
    /// `y ← α·A·x + β·y` with `A: m×n`, `x: n`, `y: m`.
    Gemv {
        /// Rows of `A` and length of `y`.
        m: usize,
        /// Columns of `A` and length of `x`.
        n: usize,
    },
}

/// Coarse kernel family, used by quirk filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Matrix–matrix multiply.
    Gemm,
    /// Matrix–vector multiply.
    Gemv,
}

impl Kernel {
    /// The kernel family.
    pub fn kind(&self) -> KernelKind {
        match self {
            Kernel::Gemm { .. } => KernelKind::Gemm,
            Kernel::Gemv { .. } => KernelKind::Gemv,
        }
    }

    /// `(m, n, k)` with `k = 1` for GEMV.
    pub fn dims(&self) -> (usize, usize, usize) {
        match *self {
            Kernel::Gemm { m, n, k } => (m, n, k),
            Kernel::Gemv { m, n } => (m, n, 1),
        }
    }
}

/// One priced BLAS call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlasCall {
    /// The kernel and its dimensions.
    pub kernel: Kernel,
    /// Element precision of all operands.
    pub precision: Precision,
    /// The `α` scalar applied to the matrix product.
    pub alpha: f64,
    /// The `β` scalar applied to the output operand.
    pub beta: f64,
}

/// Why a [`BlasCallBuilder`] rejected its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallError {
    /// Neither [`BlasCallBuilder::gemm`] nor [`BlasCallBuilder::gemv`]
    /// was called.
    MissingKernel,
    /// No precision was set.
    MissingPrecision,
    /// The named dimension was zero.
    ZeroDim(&'static str),
    /// The named scalar (`"alpha"` or `"beta"`) was NaN or infinite.
    NonFiniteScalar(&'static str),
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::MissingKernel => write!(f, "call builder: no kernel set (gemm or gemv)"),
            CallError::MissingPrecision => write!(f, "call builder: no precision set"),
            CallError::ZeroDim(d) => write!(f, "call builder: dimension `{d}` must be >= 1"),
            CallError::NonFiniteScalar(s) => write!(f, "call builder: `{s}` must be finite"),
        }
    }
}

impl std::error::Error for CallError {}

/// Validating builder for [`BlasCall`]: the one choke point where
/// untrusted call shapes (wire requests, CLI input) become a call.
/// Invalid shapes — zero dimensions, missing precision, non-finite
/// scalars — are unrepresentable in the output.
#[derive(Debug, Clone, Copy)]
pub struct BlasCallBuilder {
    kernel: Option<Kernel>,
    precision: Option<Precision>,
    alpha: f64,
    beta: f64,
}

impl BlasCallBuilder {
    /// Selects a GEMM kernel with the given dimensions.
    pub fn gemm(mut self, m: usize, n: usize, k: usize) -> Self {
        self.kernel = Some(Kernel::Gemm { m, n, k });
        self
    }

    /// Selects a GEMV kernel with the given dimensions.
    pub fn gemv(mut self, m: usize, n: usize) -> Self {
        self.kernel = Some(Kernel::Gemv { m, n });
        self
    }

    /// Sets the element precision (required).
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Overrides `α` (default 1).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Overrides `β` (default 0, the benchmark's convention).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Validates and produces the call.
    pub fn build(self) -> Result<BlasCall, CallError> {
        let kernel = self.kernel.ok_or(CallError::MissingKernel)?;
        let precision = self.precision.ok_or(CallError::MissingPrecision)?;
        match kernel {
            Kernel::Gemm { m, n, k } => {
                if m == 0 {
                    return Err(CallError::ZeroDim("m"));
                }
                if n == 0 {
                    return Err(CallError::ZeroDim("n"));
                }
                if k == 0 {
                    return Err(CallError::ZeroDim("k"));
                }
            }
            Kernel::Gemv { m, n } => {
                if m == 0 {
                    return Err(CallError::ZeroDim("m"));
                }
                if n == 0 {
                    return Err(CallError::ZeroDim("n"));
                }
            }
        }
        if !self.alpha.is_finite() {
            return Err(CallError::NonFiniteScalar("alpha"));
        }
        if !self.beta.is_finite() {
            return Err(CallError::NonFiniteScalar("beta"));
        }
        Ok(BlasCall {
            kernel,
            precision,
            alpha: self.alpha,
            beta: self.beta,
        })
    }
}

impl BlasCall {
    /// A validating builder (see [`BlasCallBuilder`]); the trusted-input
    /// shortcut constructors [`BlasCall::gemm`]/[`BlasCall::gemv`] remain
    /// for code whose dimensions are correct by construction.
    pub fn builder() -> BlasCallBuilder {
        BlasCallBuilder {
            kernel: None,
            precision: None,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// A GEMM call with the benchmark's default `α = 1, β = 0`.
    pub fn gemm(precision: Precision, m: usize, n: usize, k: usize) -> Self {
        Self {
            kernel: Kernel::Gemm { m, n, k },
            precision,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// A GEMV call with the benchmark's default `α = 1, β = 0`.
    pub fn gemv(precision: Precision, m: usize, n: usize) -> Self {
        Self {
            kernel: Kernel::Gemv { m, n },
            precision,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Override α and β.
    pub fn with_scalars(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> usize {
        self.precision.bytes()
    }

    /// The FLOP count GPU-BLOB reports (paper §III-A):
    /// GEMM `2MNK + MN + qMN`, GEMV `2MN + M + qM`, with `q = 0` when
    /// `β = 0` and `q = 2` otherwise — because Table I established that the
    /// β-work is skipped by real libraries when `β = 0`.
    pub fn paper_flops(&self) -> f64 {
        // blob-check: allow(no-float-eq): β is a configured sentinel, never computed — libraries dispatch on exactly 0.0
        let q = if self.beta == 0.0 { 0.0 } else { 2.0 };
        match self.kernel {
            Kernel::Gemm { m, n, k } => {
                let (m, n, k) = (m as f64, n as f64, k as f64);
                2.0 * m * n * k + m * n + q * m * n
            }
            Kernel::Gemv { m, n } => {
                let (m, n) = (m as f64, n as f64);
                2.0 * m * n + m + q * m
            }
        }
    }

    /// The FLOPs a concrete library actually executes. Libraries with the
    /// β=0 short-circuit (`beta0_opt`) skip `β·C` and `AB + C` when β=0;
    /// libraries without it always execute the full `2MNK + 3MN` (GEMV:
    /// `2MN + 3M`). The α=1 multiply is never skipped (Table I found no
    /// library optimises on α).
    pub fn library_flops(&self, beta0_opt: bool) -> f64 {
        // blob-check: allow(no-float-eq): β is a configured sentinel, never computed — libraries dispatch on exactly 0.0
        let q = if beta0_opt && self.beta == 0.0 {
            0.0
        } else {
            2.0
        };
        match self.kernel {
            Kernel::Gemm { m, n, k } => {
                let (m, n, k) = (m as f64, n as f64, k as f64);
                2.0 * m * n * k + m * n + q * m * n
            }
            Kernel::Gemv { m, n } => {
                let (m, n) = (m as f64, n as f64);
                2.0 * m * n + m + q * m
            }
        }
    }

    /// Bytes shipped host → device before compute can start (matrices A, B
    /// and C for GEMM; matrix A and vectors x, y for GEMV — the paper's
    /// Transfer-Once set, §III-B2).
    pub fn bytes_to_device(&self) -> f64 {
        let es = self.elem_bytes() as f64;
        match self.kernel {
            Kernel::Gemm { m, n, k } => es * ((m * k + k * n + m * n) as f64),
            Kernel::Gemv { m, n } => es * ((m * n + n + m) as f64),
        }
    }

    /// Bytes shipped device → host after compute (C; y).
    pub fn bytes_from_device(&self) -> f64 {
        let es = self.elem_bytes() as f64;
        match self.kernel {
            Kernel::Gemm { m, n, .. } => es * ((m * n) as f64),
            Kernel::Gemv { m, .. } => es * (m as f64),
        }
    }

    /// Bytes a compute device must stream per execution of the kernel
    /// (read A, B/x and — unless β=0 — C/y; write C/y).
    pub fn bytes_streamed(&self) -> f64 {
        self.bytes_streamed_lib(true)
    }

    /// Bytes streamed by a concrete library: one *without* the β=0
    /// short-circuit always reads C/y, even at β=0.
    pub fn bytes_streamed_lib(&self, beta0_opt: bool) -> f64 {
        let es = self.elem_bytes() as f64;
        // blob-check: allow(no-float-eq): β is a configured sentinel, never computed — libraries dispatch on exactly 0.0
        let read_c = if beta0_opt && self.beta == 0.0 {
            0.0
        } else {
            1.0
        };
        match self.kernel {
            Kernel::Gemm { m, n, k } => {
                es * ((m * k + k * n) as f64 + (1.0 + read_c) * (m * n) as f64)
            }
            Kernel::Gemv { m, n } => es * ((m * n + n) as f64 + (1.0 + read_c) * m as f64),
        }
    }

    /// Resident working-set size in bytes (everything touched).
    pub fn working_set(&self) -> f64 {
        let es = self.elem_bytes() as f64;
        match self.kernel {
            Kernel::Gemm { m, n, k } => es * ((m * k + k * n + m * n) as f64),
            Kernel::Gemv { m, n } => es * ((m * n + n + m) as f64),
        }
    }

    /// Arithmetic intensity in FLOPs/byte — the quantity the paper uses to
    /// reason about which problem shapes ever deserve a GPU (§IV-C).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.paper_flops() / self.working_set()
    }

    /// Routine name as the paper spells it, e.g. `SGEMM`, `DGEMV`.
    pub fn routine(&self) -> String {
        let base = match self.kernel.kind() {
            KernelKind::Gemm => "GEMM",
            KernelKind::Gemv => "GEMV",
        };
        format!("{}{}", self.precision.prefix(), base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_flops_gemm_beta_zero() {
        // 2MNK + MN with q = 0
        let c = BlasCall::gemm(Precision::F32, 10, 20, 30);
        assert_eq!(c.paper_flops(), 2.0 * 10.0 * 20.0 * 30.0 + 200.0);
    }

    #[test]
    fn paper_flops_gemm_beta_nonzero() {
        // q = 2 adds 2MN
        let c = BlasCall::gemm(Precision::F32, 10, 20, 30).with_scalars(1.0, 2.0);
        assert_eq!(c.paper_flops(), 2.0 * 6000.0 + 200.0 + 2.0 * 200.0);
    }

    #[test]
    fn paper_flops_gemv() {
        let c = BlasCall::gemv(Precision::F64, 100, 50);
        assert_eq!(c.paper_flops(), 2.0 * 5000.0 + 100.0);
        let cb = c.with_scalars(1.0, 1.0);
        assert_eq!(cb.paper_flops(), 2.0 * 5000.0 + 100.0 + 200.0);
    }

    #[test]
    fn library_flops_depends_on_beta0_opt() {
        let c = BlasCall::gemm(Precision::F64, 8, 8, 8);
        // with the optimisation: q = 0 at beta = 0
        assert_eq!(c.library_flops(true), c.paper_flops());
        // without it: the full 2MNK + 3MN is executed even at beta = 0
        assert_eq!(c.library_flops(false), 2.0 * 512.0 + 3.0 * 64.0);
        // at beta != 0 both agree
        let cb = c.with_scalars(1.0, 2.0);
        assert_eq!(cb.library_flops(true), cb.library_flops(false));
    }

    #[test]
    fn transfer_byte_counts() {
        let c = BlasCall::gemm(Precision::F32, 2, 3, 4);
        // A: 2x4, B: 4x3, C: 2x3, f32
        assert_eq!(c.bytes_to_device(), 4.0 * (8 + 12 + 6) as f64);
        assert_eq!(c.bytes_from_device(), 4.0 * 6.0);
        let v = BlasCall::gemv(Precision::F64, 5, 7);
        assert_eq!(v.bytes_to_device(), 8.0 * (35 + 7 + 5) as f64);
        assert_eq!(v.bytes_from_device(), 8.0 * 5.0);
    }

    #[test]
    fn streamed_bytes_respects_beta() {
        let c0 = BlasCall::gemm(Precision::F64, 4, 4, 4);
        let c1 = c0.with_scalars(1.0, 1.0);
        // beta != 0 additionally reads C: + m*n elements
        assert_eq!(c1.bytes_streamed() - c0.bytes_streamed(), 8.0 * 16.0);
    }

    #[test]
    fn arithmetic_intensity_ordering() {
        // GEMM AI grows with size; GEMV AI is bounded (~2/es)
        let small = BlasCall::gemm(Precision::F32, 16, 16, 16);
        let large = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        assert!(large.arithmetic_intensity() > small.arithmetic_intensity());
        let v = BlasCall::gemv(Precision::F32, 4096, 4096);
        assert!(v.arithmetic_intensity() < 1.0); // ~0.5 flops/byte
        assert!(large.arithmetic_intensity() > 100.0);
    }

    #[test]
    fn routine_names() {
        assert_eq!(BlasCall::gemm(Precision::F32, 1, 1, 1).routine(), "SGEMM");
        assert_eq!(BlasCall::gemv(Precision::F64, 1, 1).routine(), "DGEMV");
    }

    #[test]
    fn builder_accepts_a_valid_call() {
        let c = BlasCall::builder()
            .gemm(8, 16, 32)
            .precision(Precision::F32)
            .alpha(2.0)
            .beta(1.0)
            .build()
            .unwrap();
        assert_eq!(
            c,
            BlasCall::gemm(Precision::F32, 8, 16, 32).with_scalars(2.0, 1.0)
        );
    }

    #[test]
    fn builder_rejects_invalid_shapes() {
        assert_eq!(
            BlasCall::builder().precision(Precision::F64).build(),
            Err(CallError::MissingKernel)
        );
        assert_eq!(
            BlasCall::builder().gemm(1, 1, 1).build(),
            Err(CallError::MissingPrecision)
        );
        assert_eq!(
            BlasCall::builder()
                .gemm(1, 0, 1)
                .precision(Precision::F64)
                .build(),
            Err(CallError::ZeroDim("n"))
        );
        assert_eq!(
            BlasCall::builder()
                .gemv(0, 1)
                .precision(Precision::F64)
                .build(),
            Err(CallError::ZeroDim("m"))
        );
        assert_eq!(
            BlasCall::builder()
                .gemv(1, 1)
                .precision(Precision::F64)
                .alpha(f64::NAN)
                .build(),
            Err(CallError::NonFiniteScalar("alpha"))
        );
        assert_eq!(
            BlasCall::builder()
                .gemv(1, 1)
                .precision(Precision::F64)
                .beta(f64::INFINITY)
                .build(),
            Err(CallError::NonFiniteScalar("beta"))
        );
    }

    #[test]
    fn kernel_dims_and_kind() {
        let g = Kernel::Gemm { m: 1, n: 2, k: 3 };
        assert_eq!(g.dims(), (1, 2, 3));
        assert_eq!(g.kind(), KernelKind::Gemm);
        let v = Kernel::Gemv { m: 9, n: 8 };
        assert_eq!(v.dims(), (9, 8, 1));
        assert_eq!(v.kind(), KernelKind::Gemv);
    }
}
