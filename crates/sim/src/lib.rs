//! # blob-sim — heterogeneous HPC system performance models
//!
//! The GPU-BLOB paper measures three production systems (DAWN, LUMI,
//! Isambard-AI) that are not reproducible without the hardware. This crate
//! substitutes **calibrated analytical models**: each system is priced as a
//! composition of
//!
//! - a CPU socket roofline with an efficiency ramp, per-call library
//!   overheads and a cache-warmth model ([`cpu`]),
//! - a GPU device roofline with an occupancy ramp and launch latency
//!   ([`gpu`]),
//! - an interconnect (latency + bandwidth, pinned transfers) ([`link`]),
//! - a vendor USM/page-migration behaviour ([`usm`]), and
//! - the *library heuristic quirks* the paper identifies as decisive
//!   (oneMKL's 629 cliff, AOCL's serial GEMV, NVPL's thread heuristics,
//!   rocBLAS's shape-dependent jumps) ([`quirk`]).
//!
//! [`presets`] provides the calibrated models of the paper's systems plus
//! the ablation variants used in Figs 3, 6 and 7 and Table I. All models
//! are deterministic pure functions (optional seeded noise), so the
//! benchmark harness in `blob-core` regenerates the paper's tables
//! bit-identically.
//!
//! ```
//! use blob_sim::{presets, BlasCall, Offload, Precision};
//!
//! let gh200 = presets::isambard_ai();
//! let call = BlasCall::gemm(Precision::F32, 2048, 2048, 2048);
//! let cpu = gh200.cpu_seconds(&call, 8);
//! let gpu = gh200.gpu_seconds(&call, 8, Offload::TransferOnce).unwrap();
//! assert!(gpu < cpu, "large GEMM with re-use belongs on the H100");
//! ```

pub mod batch;
pub mod calibrate;
pub mod call;
pub mod cpu;
pub mod energy;
pub mod engine;
pub mod firsttouch;
pub mod gpu;
pub mod hybrid;
pub mod link;
pub mod offload;
pub mod presets;
pub mod quirk;
pub mod spmv;
pub mod system;
pub mod trace;
pub mod trsm;
pub mod usm;

pub use calibrate::{fit_envelope, library_from_envelope, Envelope, Sample};
pub use call::{BlasCall, BlasCallBuilder, CallError, Kernel, KernelKind};
pub use cpu::{CpuLibrary, CpuModel};
pub use energy::{cpu_energy_joules, energy_gemm_threshold, gpu_energy_joules, PowerModel};
pub use engine::{with_matrix_engine, MatrixEngine};
pub use firsttouch::{FirstTouchModel, Residency};
pub use gpu::{GpuLibrary, GpuModel};
pub use hybrid::{best_split, hybrid_seconds, HybridPlan};
pub use link::LinkModel;
pub use offload::Offload;
pub use spmv::SpmvCall;
pub use system::{Noise, SystemModel};
pub use trace::{gpu_trace, phase_totals, Phase, TraceEvent};
pub use trsm::TrsmCall;
pub use usm::UsmModel;

/// Re-export of the precision enum shared with the BLAS crate.
pub use blob_blas::scalar::Precision;
