//! Sparse matrix-vector (SpMV) offload pricing — the sparse-BLAS direction
//! the paper closes with (§V): "this would broaden the scope of
//! applications we can evaluate".
//!
//! SpMV is bandwidth-bound like GEMV but with two extra effects:
//! - the CSR index structure is extra traffic (4-byte column index per
//!   non-zero plus the row pointer array);
//! - the gather of `x[col_idx[p]]` is irregular — effective bandwidth
//!   degrades with poor column locality, captured by a per-matrix
//!   `locality` factor (1 = banded/sequential, →0 = random scatter).

use crate::offload::Offload;
use crate::system::SystemModel;
use crate::Precision;

/// One SpMV invocation's shape, as the model prices it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpmvCall {
    /// Matrix row count.
    pub rows: usize,
    /// Matrix column count.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// Element precision of values and vectors.
    pub precision: Precision,
    /// Column-access locality in (0, 1]: 1 = perfectly banded,
    /// 0.1 = near-random gather.
    pub locality: f64,
}

impl SpmvCall {
    /// A banded matrix: `band` non-zeros per row, near-perfect locality.
    pub fn banded(n: usize, band: usize, precision: Precision) -> Self {
        Self {
            rows: n,
            cols: n,
            nnz: n * band.min(n),
            precision,
            locality: 0.95,
        }
    }

    /// A uniformly random sparse matrix at the given density.
    pub fn random(n: usize, density: f64, precision: Precision) -> Self {
        Self {
            rows: n,
            cols: n,
            nnz: ((n as f64 * n as f64 * density) as usize).max(1),
            precision,
            locality: 0.25,
        }
    }

    /// FLOPs per execution (one FMA per stored non-zero).
    pub fn flops(&self) -> f64 {
        2.0 * self.nnz as f64
    }

    /// Bytes of CSR structure + vectors streamed per execution.
    pub fn bytes_streamed(&self) -> f64 {
        self.bytes_sequential() + self.bytes_gathered()
    }

    /// The sequentially-streamed part: values, column indices, row
    /// pointers and the output vector. Runs at full stream bandwidth
    /// regardless of sparsity pattern.
    pub fn bytes_sequential(&self) -> f64 {
        let es = self.precision.bytes() as f64;
        let idx = 4.0; // u32 column indices, the common library layout
        self.nnz as f64 * (es + idx)              // values + col_idx
            + (self.rows as f64 + 1.0) * 8.0      // row_ptr
            + self.rows as f64 * es // y (written)
    }

    /// The gathered part: one `x[col_idx[p]]` access per non-zero. This is
    /// the traffic the sparsity pattern's locality scales.
    pub fn bytes_gathered(&self) -> f64 {
        self.nnz as f64 * self.precision.bytes() as f64
    }

    /// Bytes shipped host→device before compute (the CSR arrays + x).
    pub fn bytes_to_device(&self) -> f64 {
        let es = self.precision.bytes() as f64;
        self.nnz as f64 * (es + 4.0) + (self.rows as f64 + 1.0) * 8.0 + self.cols as f64 * es
    }

    /// Bytes shipped device→host after compute (y).
    pub fn bytes_from_device(&self) -> f64 {
        self.rows as f64 * self.precision.bytes() as f64
    }
}

impl SystemModel {
    /// Total CPU seconds for `iters` SpMV executions.
    pub fn cpu_spmv_seconds(&self, call: &SpmvCall, iters: u32) -> f64 {
        // SpMV inherits the library's GEMV threading behaviour: AOCL-style
        // serial GEMV implies serial SpMV too.
        let stream = if self.cpu_lib.gemv_parallel {
            self.cpu.dram_gbs
        } else {
            self.cpu.single_core_gbs
        };
        let bw = stream * self.cpu_lib.gemv_bw_eff * 1e9;
        // only the x-gather pays the locality penalty; the CSR arrays and
        // the output stream sequentially
        let t = call.bytes_sequential() / bw
            + call.bytes_gathered() / (bw * call.locality.clamp(0.05, 1.0))
            + self.cpu_lib.call_overhead_us * 1e-6;
        t * iters as f64
    }

    /// Total GPU seconds for `iters` SpMV executions under `offload`.
    pub fn gpu_spmv_seconds(&self, call: &SpmvCall, iters: u32, offload: Offload) -> Option<f64> {
        let gpu = self.gpu.as_ref()?;
        let lib = self.gpu_lib.as_ref()?;
        let link = self.link.as_ref()?;
        // GPUs tolerate irregular gathers better (latency hiding), so the
        // locality penalty is softened.
        let locality = call.locality.clamp(0.05, 1.0).sqrt();
        let rows = call.rows as f64;
        let occ = if lib.gemv_m_half > 0.0 {
            rows / (rows + lib.gemv_m_half)
        } else {
            1.0
        };
        let bw = gpu.hbm_gbs * lib.gemv_bw_eff * occ * 1e9;
        let kernel = call.bytes_sequential() / bw
            + call.bytes_gathered() / (bw * locality)
            + lib.launch_us * 1e-6;
        let bytes_in = call.bytes_to_device();
        let bytes_out = call.bytes_from_device();
        Some(match offload {
            Offload::TransferOnce => {
                link.to_device_seconds(bytes_in)
                    + iters as f64 * kernel
                    + link.from_device_seconds(bytes_out)
            }
            Offload::TransferAlways => {
                iters as f64 * (link.round_trip_seconds(bytes_in, bytes_out) + kernel)
            }
            Offload::Unified => {
                let usm = self.usm.as_ref()?;
                usm.total_seconds(bytes_in, bytes_out, kernel, iters)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn flops_and_bytes_accounting() {
        let c = SpmvCall::banded(1000, 5, Precision::F64);
        assert_eq!(c.nnz, 5000);
        assert_eq!(c.flops(), 10_000.0);
        // sequential: values 5000*8 + idx 5000*4 + row_ptr 1001*8 + y 8000
        assert_eq!(c.bytes_sequential(), 5000.0 * 12.0 + 1001.0 * 8.0 + 8000.0);
        // gathered: one x element per non-zero
        assert_eq!(c.bytes_gathered(), 5000.0 * 8.0);
        let expect = c.bytes_sequential() + c.bytes_gathered();
        assert_eq!(c.bytes_streamed(), expect);
        assert!(c.bytes_to_device() < c.bytes_streamed());
        assert_eq!(c.bytes_from_device(), 8000.0);
    }

    #[test]
    fn random_scatter_slower_than_banded() {
        let sys = presets::dawn();
        let banded = SpmvCall::banded(10_000, 16, Precision::F64);
        let mut random = banded;
        random.locality = 0.25;
        assert!(sys.cpu_spmv_seconds(&random, 1) > 1.5 * sys.cpu_spmv_seconds(&banded, 1));
    }

    #[test]
    fn spmv_needs_reuse_on_pcie_systems_but_not_on_the_soc() {
        // At 1 iteration, shipping the whole CSR structure over PCIe
        // cannot pay when the CPU streams at socket bandwidth (DAWN). On
        // the GH200 the link runs at near-DRAM speed and the H100's HBM
        // finishes the kernel far faster — the SoC conclusion of the paper
        // extends to sparse kernels.
        let c = SpmvCall::banded(100_000, 64, Precision::F64);
        let dawn = presets::dawn();
        assert!(
            dawn.gpu_spmv_seconds(&c, 1, Offload::TransferOnce).unwrap()
                > dawn.cpu_spmv_seconds(&c, 1) * 0.9,
            "DAWN: 1-iteration SpMV should not clearly pay"
        );
        let isam = presets::isambard_ai();
        assert!(
            isam.gpu_spmv_seconds(&c, 1, Offload::TransferOnce).unwrap()
                < isam.cpu_spmv_seconds(&c, 1),
            "GH200: even one-shot SpMV pays on the SoC"
        );
    }

    #[test]
    fn lumi_serial_cpu_makes_even_one_shot_spmv_competitive() {
        // Model prediction in the spirit of Fig 6: if AOCL runs sparse
        // kernels serially like its GEMV, one core's ~32 GB/s loses to the
        // 36 GB/s Infinity Fabric DMA — the GPU pays off almost
        // immediately, data transfer included.
        let sys = presets::lumi();
        let c = SpmvCall::banded(100_000, 64, Precision::F64);
        let cpu = sys.cpu_spmv_seconds(&c, 1);
        let gpu = sys.gpu_spmv_seconds(&c, 1, Offload::TransferOnce).unwrap();
        assert!(
            gpu < cpu * 1.2,
            "serial CPU should not be clearly ahead: {gpu} vs {cpu}"
        );
    }

    #[test]
    fn gh200_offloads_spmv_with_reuse_lumi_serial_cpu_loses() {
        // with heavy re-use, the HBM-bandwidth advantage dominates on the
        // SoC; and LUMI's serial CPU SpMV (AOCL-style) loses like Fig 6
        let c = SpmvCall::banded(200_000, 32, Precision::F64);
        let isam = presets::isambard_ai();
        assert!(
            isam.gpu_spmv_seconds(&c, 128, Offload::TransferOnce)
                .unwrap()
                < isam.cpu_spmv_seconds(&c, 128)
        );
        let lumi = presets::lumi();
        assert!(
            lumi.gpu_spmv_seconds(&c, 128, Offload::TransferOnce)
                .unwrap()
                < lumi.cpu_spmv_seconds(&c, 128)
        );
    }

    #[test]
    fn transfer_always_spmv_never_pays_over_pcie_class_links() {
        // the square-GEMV consistency (Table IV) carries over to SpMV on
        // systems where the CPU streams at socket bandwidth AND the link
        // is PCIe-class; the GH200's C2C breaks the rule (see above)
        for sys in [presets::dawn(), presets::lumi_openblas()] {
            let c = SpmvCall::banded(50_000, 16, Precision::F32);
            for iters in [1u32, 32, 128] {
                let cpu = sys.cpu_spmv_seconds(&c, iters);
                let gpu = sys
                    .gpu_spmv_seconds(&c, iters, Offload::TransferAlways)
                    .unwrap();
                assert!(
                    gpu > cpu,
                    "{}: Transfer-Always SpMV paid at {iters} iters",
                    sys.name
                );
            }
        }
    }
}
