//! Hybrid CPU+GPU execution — the MAGMA idea from the paper's related work
//! (§II): "combine the strength of the multi-core CPU and GPU architectures
//! ... to outperform libraries for the individual components taken
//! separately".
//!
//! The model splits one GEMM along the `N` dimension: a fraction `f` of the
//! columns runs on the GPU (with its transfers) while `1 − f` runs on the
//! CPU, concurrently; the call completes when both finish. [`best_split`]
//! searches `f` and reports whether the hybrid beats the better single
//! device — and by how much — which quantifies when MAGMA-style execution
//! is worth its considerable complexity.

use crate::call::{BlasCall, Kernel};
use crate::offload::Offload;
use crate::system::SystemModel;

/// Outcome of a hybrid-split search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPlan {
    /// Fraction of N columns sent to the GPU (0 = all CPU, 1 = all GPU).
    pub gpu_fraction: f64,
    /// Seconds with the hybrid split.
    pub hybrid_seconds: f64,
    /// Seconds on the CPU alone.
    pub cpu_seconds: f64,
    /// Seconds on the GPU alone.
    pub gpu_seconds: f64,
    /// Hybrid speedup over the better single device (≥ 1 means it pays).
    pub speedup_vs_best_single: f64,
}

/// Splits `call` at column fraction `f` and prices both halves running
/// concurrently (the slower half decides).
pub fn hybrid_seconds(
    sys: &SystemModel,
    call: &BlasCall,
    iters: u32,
    offload: Offload,
    f: f64,
) -> Option<f64> {
    let Kernel::Gemm { m, n, k } = call.kernel else {
        return None; // hybrid splitting is modelled for GEMM only
    };
    let f = f.clamp(0.0, 1.0);
    let n_gpu = ((n as f64) * f).round() as usize;
    let n_cpu = n - n_gpu.min(n);
    let gpu_part = if n_gpu > 0 {
        let c = BlasCall {
            kernel: Kernel::Gemm { m, n: n_gpu, k },
            ..*call
        };
        sys.gpu_seconds(&c, iters, offload)?
    } else {
        0.0
    };
    let cpu_part = if n_cpu > 0 {
        let c = BlasCall {
            kernel: Kernel::Gemm { m, n: n_cpu, k },
            ..*call
        };
        sys.cpu_seconds(&c, iters)
    } else {
        0.0
    };
    Some(gpu_part.max(cpu_part))
}

/// Searches the split fraction on a uniform grid and returns the best plan.
pub fn best_split(
    sys: &SystemModel,
    call: &BlasCall,
    iters: u32,
    offload: Offload,
    grid: usize,
) -> Option<HybridPlan> {
    let cpu_seconds = sys.cpu_seconds(call, iters);
    let gpu_seconds = sys.gpu_seconds(call, iters, offload)?;
    let grid = grid.max(2);
    let mut best_f = 0.0;
    let mut best_t = cpu_seconds;
    for i in 0..=grid {
        let f = i as f64 / grid as f64;
        let t = hybrid_seconds(sys, call, iters, offload, f)?;
        if t < best_t {
            best_t = t;
            best_f = f;
        }
    }
    let best_single = cpu_seconds.min(gpu_seconds);
    Some(HybridPlan {
        gpu_fraction: best_f,
        hybrid_seconds: best_t,
        cpu_seconds,
        gpu_seconds,
        speedup_vs_best_single: best_single / best_t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::Precision;

    #[test]
    fn endpoints_match_single_device() {
        let sys = presets::dawn();
        let call = BlasCall::gemm(Precision::F32, 1024, 1024, 1024);
        let all_cpu = hybrid_seconds(&sys, &call, 8, Offload::TransferOnce, 0.0).unwrap();
        assert!((all_cpu - sys.cpu_seconds(&call, 8)).abs() / all_cpu < 1e-12);
        let all_gpu = hybrid_seconds(&sys, &call, 8, Offload::TransferOnce, 1.0).unwrap();
        assert!(
            (all_gpu - sys.gpu_seconds(&call, 8, Offload::TransferOnce).unwrap()).abs() / all_gpu
                < 1e-12
        );
    }

    #[test]
    fn best_split_never_loses_to_either_device() {
        for sys in presets::evaluation_systems() {
            for s in [128usize, 512, 2048] {
                let call = BlasCall::gemm(Precision::F64, s, s, s);
                let plan = best_split(&sys, &call, 8, Offload::TransferOnce, 32).unwrap();
                assert!(
                    plan.hybrid_seconds <= plan.cpu_seconds * (1.0 + 1e-12),
                    "{} s={s}",
                    sys.name
                );
                assert!(plan.hybrid_seconds <= plan.gpu_seconds * (1.0 + 1e-12));
                assert!(plan.speedup_vs_best_single >= 1.0 - 1e-12);
            }
        }
    }

    #[test]
    fn hybrid_pays_most_where_devices_are_balanced() {
        // near the offload threshold CPU and GPU are comparable — exactly
        // where splitting the work helps; far above it the GPU dominates
        // and the hybrid's gain shrinks toward 1x
        let sys = presets::dawn();
        let near = BlasCall::gemm(Precision::F32, 640, 640, 640); // ~ threshold
        let far = BlasCall::gemm(Precision::F32, 4096, 4096, 4096);
        let p_near = best_split(&sys, &near, 32, Offload::TransferOnce, 64).unwrap();
        let p_far = best_split(&sys, &far, 32, Offload::TransferOnce, 64).unwrap();
        assert!(
            p_near.speedup_vs_best_single > p_far.speedup_vs_best_single,
            "near {} vs far {}",
            p_near.speedup_vs_best_single,
            p_far.speedup_vs_best_single
        );
        assert!(
            p_near.speedup_vs_best_single > 1.1,
            "MAGMA-style split pays near the threshold"
        );
    }

    #[test]
    fn gemv_not_supported() {
        let sys = presets::lumi();
        let call = BlasCall::gemv(Precision::F64, 512, 512);
        assert!(hybrid_seconds(&sys, &call, 1, Offload::TransferOnce, 0.5).is_none());
        assert!(best_split(&sys, &call, 1, Offload::TransferOnce, 8).is_none());
    }

    #[test]
    fn cpu_only_systems_cannot_split() {
        let sys = presets::isambard_ai_armpl();
        let call = BlasCall::gemm(Precision::F32, 256, 256, 256);
        assert!(best_split(&sys, &call, 1, Offload::TransferOnce, 8).is_none());
    }
}
