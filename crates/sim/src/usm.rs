//! Unified Shared Memory (USM) model.
//!
//! USM moves the same bytes as Transfer-Once but under the vendor driver's
//! page-migration heuristics instead of programmed DMA: first-touch page
//! faults migrate input pages to the device at a (usually lower) effective
//! bandwidth, output pages migrate back on host access, and residual fault
//! handling taxes every kernel execution. The paper finds this is where
//! vendors differ most — "this poor USM performance must be a result of the
//! vendor's page migration heuristics" on LUMI (§IV-A), whereas DAWN's USM
//! tracks Transfer-Once closely and the GH200's catches up once iterations
//! amortise the first-touch cost.

/// Vendor USM/page-migration behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct UsmModel {
    /// Fixed setup cost per problem (allocation mapping, fault warm-up), µs.
    pub setup_us: f64,
    /// Effective host→device page-migration bandwidth, GB/s.
    pub migration_gbs: f64,
    /// Effective device→host write-back bandwidth, GB/s.
    pub writeback_gbs: f64,
    /// Fractional slowdown added to every kernel execution by residual
    /// fault handling / address-translation traffic (large on systems that
    /// need `HSA_XNACK`-style fault signalling, small on NVLink-C2C).
    pub per_iter_penalty: f64,
}

impl UsmModel {
    /// Total seconds for `iters` kernel executions of `kernel_seconds`
    /// each, migrating `bytes_in` on first touch and `bytes_out` back.
    pub fn total_seconds(
        &self,
        bytes_in: f64,
        bytes_out: f64,
        kernel_seconds: f64,
        iters: u32,
    ) -> f64 {
        let migrate = bytes_in / (self.migration_gbs * 1e9);
        let writeback = bytes_out / (self.writeback_gbs * 1e9);
        self.setup_us * 1e-6
            + migrate
            + writeback
            + iters as f64 * kernel_seconds * (1.0 + self.per_iter_penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usm() -> UsmModel {
        UsmModel {
            setup_us: 50.0,
            migration_gbs: 20.0,
            writeback_gbs: 20.0,
            per_iter_penalty: 0.10,
        }
    }

    #[test]
    fn setup_floor() {
        let u = usm();
        let t = u.total_seconds(0.0, 0.0, 0.0, 1);
        assert!((t - 50e-6).abs() < 1e-12);
    }

    #[test]
    fn migration_priced_at_migration_bandwidth() {
        let u = usm();
        // 20 GB at 20 GB/s = 1 s migration
        let t = u.total_seconds(20e9, 0.0, 0.0, 1);
        assert!((t - (1.0 + 50e-6)).abs() < 1e-9);
    }

    #[test]
    fn per_iteration_penalty_taxes_kernels() {
        let u = usm();
        let base = 1e-3;
        let t = u.total_seconds(0.0, 0.0, base, 10);
        assert!((t - (50e-6 + 10.0 * base * 1.1)).abs() < 1e-12);
    }

    #[test]
    fn first_touch_amortises_with_iterations() {
        // per-iteration average cost decreases with iteration count
        let u = usm();
        let k = 1e-4;
        let avg = |i: u32| u.total_seconds(1e9, 1e8, k, i) / i as f64;
        assert!(avg(1) > avg(8));
        assert!(avg(8) > avg(128));
        // and converges towards the taxed kernel time
        assert!((avg(10_000) - k * 1.1) / (k * 1.1) < 0.1);
    }
}
