//! Library heuristic quirks.
//!
//! The paper's central empirical finding is that offload thresholds are
//! shaped as much by *BLAS library heuristics* as by hardware: oneMKL's CPU
//! performance cliff at `{629, 629, 629}` (Fig 2), NVPL spinning up all 72
//! threads for every problem size (Fig 3), AOCL never parallelising GEMV
//! (Fig 6), rocBLAS's SGEMM performance jump at `{32, 32, 2560}` (§IV-C),
//! the Grace CPU GEMV drop at `{256, 256}` (§IV-B), and more.
//!
//! Each observed heuristic is modelled as a [`Quirk`]: a filtered,
//! deterministic multiplier on the base execution time. Quirks compose —
//! a library carries a list and the system model applies them in order.

use crate::call::{BlasCall, Kernel, KernelKind};
use blob_blas::scalar::Precision;

/// Which dimension of the call a quirk keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimSel {
    /// Smallest of the call's dimensions.
    Min,
    /// Largest of the call's dimensions.
    Max,
    /// Row dimension M.
    M,
    /// Column dimension N.
    N,
    /// Inner dimension K (GEMV: 1).
    K,
}

impl DimSel {
    /// Extracts the selected dimension from a call.
    pub fn of(self, call: &BlasCall) -> usize {
        let (m, n, k) = call.kernel.dims();
        match (self, call.kernel) {
            (DimSel::M, _) => m,
            (DimSel::N, _) => n,
            (DimSel::K, _) => k,
            // GEMV min/max consider only m and n (k is a dummy 1)
            (DimSel::Min, Kernel::Gemv { .. }) => m.min(n),
            (DimSel::Max, Kernel::Gemv { .. }) => m.max(n),
            (DimSel::Min, Kernel::Gemm { .. }) => m.min(n).min(k),
            (DimSel::Max, Kernel::Gemm { .. }) => m.max(n).max(k),
        }
    }
}

/// The shape of a quirk's time multiplier as a function of the selected
/// dimension `s`. A factor > 1 slows the library down; < 1 speeds it up.
#[derive(Debug, Clone, PartialEq)]
pub enum QuirkShape {
    /// Performance cliff with linear recovery: time × `penalty` at
    /// `s == start`, relaxing linearly back to ×1 at `start + span`.
    /// Models the oneMKL CPU drop at 629 that "is gradually recovered from
    /// as the problem size increases".
    DropRecover {
        /// Dimension where the cliff appears.
        start: usize,
        /// Multiplier at the cliff (> 1 slows down).
        penalty: f64,
        /// Dimensions over which the penalty relaxes back to ×1.
        span: usize,
    },
    /// Persistent cliff: time × `penalty` for every `s >= start`.
    /// Models the Grace CPU GEMV drop at {256, 256}.
    DropPersist {
        /// First dimension affected.
        start: usize,
        /// Multiplier applied from `start` on.
        penalty: f64,
    },
    /// Small-problem penalty fading linearly: time × `penalty` at `s = 0`
    /// down to ×1 at `s >= end`. Models NVPL waking all 72 threads for
    /// every problem size.
    SmallSizePenalty {
        /// Dimension where the penalty has fully faded.
        end: usize,
        /// Multiplier at `s = 0`.
        penalty: f64,
    },
    /// Step change for every `s >= start`: time × `factor`.
    /// With `factor < 1`, models the rocBLAS SGEMM jump at K = 2560.
    StepFactor {
        /// First dimension affected.
        start: usize,
        /// Multiplier applied from `start` on.
        factor: f64,
    },
    /// Gradual decay: time × `(1 + slope · (s - start) / 1000)` for
    /// `s > start`. Models the DAWN CPU DGEMV decline past ~3000 (paper
    /// footnote 6).
    DecayAfter {
        /// Dimension where the decay begins.
        start: usize,
        /// Slowdown slope per 1000 dimensions.
        slope: f64,
    },
}

impl QuirkShape {
    /// The time multiplier at selected dimension `s`.
    pub fn factor(&self, s: usize) -> f64 {
        match *self {
            QuirkShape::DropRecover {
                start,
                penalty,
                span,
            } => {
                if s < start {
                    1.0
                } else {
                    let progress = ((s - start) as f64 / span.max(1) as f64).min(1.0);
                    penalty + (1.0 - penalty) * progress
                }
            }
            QuirkShape::DropPersist { start, penalty } => {
                if s >= start {
                    penalty
                } else {
                    1.0
                }
            }
            QuirkShape::SmallSizePenalty { end, penalty } => {
                if s >= end {
                    1.0
                } else {
                    let progress = s as f64 / end.max(1) as f64;
                    penalty + (1.0 - penalty) * progress
                }
            }
            QuirkShape::StepFactor { start, factor } => {
                if s >= start {
                    factor
                } else {
                    1.0
                }
            }
            QuirkShape::DecayAfter { start, slope } => {
                if s <= start {
                    1.0
                } else {
                    1.0 + slope * (s - start) as f64 / 1000.0
                }
            }
        }
    }
}

/// One library heuristic: a filter plus a time-multiplier shape.
#[derive(Debug, Clone)]
pub struct Quirk {
    /// Human-readable provenance (which paper observation this models).
    pub name: &'static str,
    /// Restrict to a kernel family (`None` = both).
    pub kernel: Option<KernelKind>,
    /// Restrict to one precision (`None` = both).
    pub precision: Option<Precision>,
    /// Extra structural predicate on (m, n, k); `None` = no constraint.
    /// Used for shape-conditional heuristics such as rocBLAS's jump that
    /// only manifests when M = N = 32.
    pub dims_filter: Option<fn(usize, usize, usize) -> bool>,
    /// Which dimension drives the shape function.
    pub dim: DimSel,
    /// The multiplier curve.
    pub shape: QuirkShape,
}

impl Quirk {
    /// The time multiplier this quirk contributes for `call` (1.0 when the
    /// filter does not match).
    pub fn time_factor(&self, call: &BlasCall) -> f64 {
        if let Some(kind) = self.kernel {
            if call.kernel.kind() != kind {
                return 1.0;
            }
        }
        if let Some(p) = self.precision {
            if call.precision != p {
                return 1.0;
            }
        }
        if let Some(f) = self.dims_filter {
            let (m, n, k) = call.kernel.dims();
            if !f(m, n, k) {
                return 1.0;
            }
        }
        self.shape.factor(self.dim.of(call))
    }
}

/// Applies a quirk list to a base time.
pub fn apply_quirks(quirks: &[Quirk], call: &BlasCall, seconds: f64) -> f64 {
    quirks.iter().fold(seconds, |t, q| t * q.time_factor(call))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sgemm(m: usize, n: usize, k: usize) -> BlasCall {
        BlasCall::gemm(Precision::F32, m, n, k)
    }

    #[test]
    fn dim_selectors() {
        let c = sgemm(10, 20, 30);
        assert_eq!(DimSel::M.of(&c), 10);
        assert_eq!(DimSel::N.of(&c), 20);
        assert_eq!(DimSel::K.of(&c), 30);
        assert_eq!(DimSel::Min.of(&c), 10);
        assert_eq!(DimSel::Max.of(&c), 30);
        let v = BlasCall::gemv(Precision::F64, 100, 4);
        assert_eq!(DimSel::Min.of(&v), 4); // ignores the dummy k = 1
        assert_eq!(DimSel::Max.of(&v), 100);
    }

    #[test]
    fn drop_recover_shape() {
        let s = QuirkShape::DropRecover {
            start: 629,
            penalty: 2.0,
            span: 1000,
        };
        assert_eq!(s.factor(628), 1.0);
        assert_eq!(s.factor(629), 2.0);
        let mid = s.factor(1129); // halfway through recovery
        assert!((mid - 1.5).abs() < 1e-9);
        assert_eq!(s.factor(1629), 1.0);
        assert_eq!(s.factor(4000), 1.0);
    }

    #[test]
    fn drop_persist_shape() {
        let s = QuirkShape::DropPersist {
            start: 256,
            penalty: 3.0,
        };
        assert_eq!(s.factor(255), 1.0);
        assert_eq!(s.factor(256), 3.0);
        assert_eq!(s.factor(4096), 3.0);
    }

    #[test]
    fn small_size_penalty_shape() {
        let s = QuirkShape::SmallSizePenalty {
            end: 100,
            penalty: 10.0,
        };
        assert_eq!(s.factor(0), 10.0);
        assert!((s.factor(50) - 5.5).abs() < 1e-9);
        assert_eq!(s.factor(100), 1.0);
        assert_eq!(s.factor(1000), 1.0);
    }

    #[test]
    fn step_factor_speedup() {
        let s = QuirkShape::StepFactor {
            start: 2560,
            factor: 0.25,
        };
        assert_eq!(s.factor(2559), 1.0);
        assert_eq!(s.factor(2560), 0.25);
    }

    #[test]
    fn decay_after_shape() {
        let s = QuirkShape::DecayAfter {
            start: 3000,
            slope: 0.5,
        };
        assert_eq!(s.factor(3000), 1.0);
        assert!((s.factor(4000) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn quirk_filters_kernel_and_precision() {
        let q = Quirk {
            name: "test",
            kernel: Some(KernelKind::Gemm),
            precision: Some(Precision::F32),
            dims_filter: None,
            dim: DimSel::Min,
            shape: QuirkShape::DropPersist {
                start: 0,
                penalty: 2.0,
            },
        };
        assert_eq!(q.time_factor(&sgemm(8, 8, 8)), 2.0);
        assert_eq!(q.time_factor(&BlasCall::gemm(Precision::F64, 8, 8, 8)), 1.0);
        assert_eq!(q.time_factor(&BlasCall::gemv(Precision::F32, 8, 8)), 1.0);
    }

    #[test]
    fn quirk_dims_filter() {
        // rocBLAS-style: only when m == 32 && n == 32
        let q = Quirk {
            name: "lumi-sgemm-k-jump",
            kernel: Some(KernelKind::Gemm),
            precision: Some(Precision::F32),
            dims_filter: Some(|m, n, _k| m == 32 && n == 32),
            dim: DimSel::K,
            shape: QuirkShape::StepFactor {
                start: 2560,
                factor: 0.2,
            },
        };
        assert_eq!(q.time_factor(&sgemm(32, 32, 3000)), 0.2);
        assert_eq!(q.time_factor(&sgemm(32, 32, 2000)), 1.0);
        assert_eq!(q.time_factor(&sgemm(64, 32, 3000)), 1.0);
    }

    #[test]
    fn quirks_compose_multiplicatively() {
        let q1 = Quirk {
            name: "a",
            kernel: None,
            precision: None,
            dims_filter: None,
            dim: DimSel::Min,
            shape: QuirkShape::DropPersist {
                start: 0,
                penalty: 2.0,
            },
        };
        let q2 = Quirk {
            name: "b",
            kernel: None,
            precision: None,
            dims_filter: None,
            dim: DimSel::Min,
            shape: QuirkShape::DropPersist {
                start: 0,
                penalty: 3.0,
            },
        };
        let t = apply_quirks(&[q1, q2], &sgemm(4, 4, 4), 1.0);
        assert_eq!(t, 6.0);
    }
}
