//! Property-based tests of the performance models: invariants that must
//! hold for arbitrary calls, batch counts, and quirk configurations.

use blob_sim::{
    batch::gpu_batched_kernel_seconds, fit_envelope, gpu_trace, phase_totals, presets,
    quirk::QuirkShape, BlasCall, Offload, Precision, Sample,
};
use proptest::prelude::*;

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![Just(Precision::F32), Just(Precision::F64)]
}

fn any_offload() -> impl Strategy<Value = Offload> {
    prop_oneof![
        Just(Offload::TransferOnce),
        Just(Offload::TransferAlways),
        Just(Offload::Unified)
    ]
}

fn any_system() -> impl Strategy<Value = usize> {
    0usize..3
}

fn system(i: usize) -> blob_sim::SystemModel {
    match i {
        0 => presets::dawn(),
        1 => presets::lumi(),
        _ => presets::isambard_ai(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FLOPs and byte counters are positive and monotone in every dim.
    #[test]
    fn call_accounting_monotone(
        m in 1usize..3000,
        n in 1usize..3000,
        k in 1usize..3000,
        prec in any_precision(),
    ) {
        let c = BlasCall::gemm(prec, m, n, k);
        let bigger = BlasCall::gemm(prec, m + 1, n, k);
        prop_assert!(c.paper_flops() > 0.0);
        prop_assert!(bigger.paper_flops() > c.paper_flops());
        prop_assert!(bigger.bytes_to_device() > c.bytes_to_device());
        prop_assert!(c.bytes_from_device() <= c.bytes_to_device());
        prop_assert!(c.working_set() > 0.0);
        prop_assert!(c.arithmetic_intensity() > 0.0);
    }

    /// GPU time grows when any dimension grows (same offload, iters).
    #[test]
    fn gpu_time_monotone_in_size(
        sys_i in any_system(),
        s in 16usize..2000,
        offload in any_offload(),
        iters in 1u32..65,
    ) {
        let sys = system(sys_i);
        let t1 = sys.gpu_seconds(&BlasCall::gemm(Precision::F32, s, s, s), iters, offload).unwrap();
        let t2 = sys.gpu_seconds(&BlasCall::gemm(Precision::F32, s + 64, s + 64, s + 64), iters, offload).unwrap();
        prop_assert!(t2 > t1, "{t2} <= {t1}");
    }

    /// Doubling the batch at fixed per-instance size costs at most 2x the
    /// batched kernel time (occupancy only improves) and at least 1x.
    #[test]
    fn batched_kernel_subadditive(
        sys_i in any_system(),
        s in 4usize..128,
        batch in 1usize..256,
    ) {
        let sys = system(sys_i);
        let gpu = sys.gpu.as_ref().unwrap();
        let lib = sys.gpu_lib.as_ref().unwrap();
        let call = BlasCall::gemm(Precision::F32, s, s, s);
        let t1 = gpu_batched_kernel_seconds(gpu, lib, &call, batch);
        let t2 = gpu_batched_kernel_seconds(gpu, lib, &call, 2 * batch);
        prop_assert!(t2 >= t1 * (1.0 - 1e-12), "more work can't be faster");
        prop_assert!(t2 <= 2.0 * t1 * (1.0 + 1e-9), "batching never super-linear");
    }

    /// The trace decomposition always sums to the scalar timing.
    #[test]
    fn trace_sums_to_scalar(
        sys_i in any_system(),
        m in 1usize..1500,
        n in 1usize..1500,
        offload in any_offload(),
        iters in 1u32..33,
        gemv in any::<bool>(),
    ) {
        let sys = system(sys_i);
        let call = if gemv {
            BlasCall::gemv(Precision::F64, m, n)
        } else {
            BlasCall::gemm(Precision::F64, m, n, 64)
        };
        let trace = gpu_trace(&sys, &call, iters, offload).unwrap();
        let total = trace.last().unwrap().end;
        let scalar = sys.gpu_seconds(&call, iters, offload).unwrap();
        prop_assert!((total - scalar).abs() / scalar < 1e-9);
        let sum: f64 = phase_totals(&trace).iter().map(|&(_, t)| t).sum();
        prop_assert!((sum - total).abs() / total < 1e-9);
    }

    /// Quirk shapes always return positive, finite multipliers.
    #[test]
    fn quirk_factors_positive(
        start in 0usize..5000,
        penalty in 0.01f64..10.0,
        span in 1usize..5000,
        s in 0usize..10_000,
    ) {
        for shape in [
            QuirkShape::DropRecover { start, penalty, span },
            QuirkShape::DropPersist { start, penalty },
            QuirkShape::SmallSizePenalty { end: span, penalty },
            QuirkShape::StepFactor { start, factor: penalty },
            QuirkShape::DecayAfter { start, slope: penalty },
        ] {
            let f = shape.factor(s);
            prop_assert!(f.is_finite() && f > 0.0, "{shape:?} at {s} -> {f}");
        }
    }

    /// DropRecover always returns to exactly 1 beyond start + span.
    #[test]
    fn drop_recover_converges(
        start in 0usize..2000,
        penalty in 0.1f64..5.0,
        span in 1usize..2000,
    ) {
        let shape = QuirkShape::DropRecover { start, penalty, span };
        prop_assert_eq!(shape.factor(start + span), 1.0);
        prop_assert_eq!(shape.factor(start + span + 1000), 1.0);
        if start > 0 {
            prop_assert_eq!(shape.factor(start - 1), 1.0);
        }
    }

    /// Envelope fitting recovers synthetic parameters exactly for any
    /// positive rate/fixed-cost and a spread of work values.
    #[test]
    fn envelope_fit_recovers_truth(
        rate_g in 1.0f64..50_000.0,
        fixed_us in 0.0f64..500.0,
        base in 1e5f64..1e7,
    ) {
        let rate = rate_g * 1e9;
        let fixed = fixed_us * 1e-6;
        let samples: Vec<Sample> = (1..=6)
            .map(|i| {
                let w = base * (i * i) as f64;
                Sample { work: w, seconds: w / rate + fixed }
            })
            .collect();
        let e = fit_envelope(&samples).unwrap();
        prop_assert!((e.rate / rate - 1.0).abs() < 1e-6);
        prop_assert!((e.fixed_cost - fixed).abs() < 1e-9 + fixed * 1e-6);
    }

    /// The batched threshold never exceeds the scan bound and responds
    /// sanely to batch growth on the SoC (monotone non-increasing there).
    #[test]
    fn batched_threshold_bounded(batch in 1usize..512) {
        let sys = presets::isambard_ai();
        let t = sys.batched_gemm_threshold(Precision::F32, batch, 8, Offload::TransferOnce, 512);
        if let Some(t) = t {
            prop_assert!((1..=512).contains(&t));
        }
    }
}
