//! Property-based tests of the performance models: invariants that must
//! hold for arbitrary calls, batch counts, and quirk configurations.
//!
//! Driven by `blob_core::testkit`; a failing case prints its seed for
//! replay with `testkit::run_case`.

use blob_core::testkit::{forall, Config, Gen};
use blob_sim::{
    batch::gpu_batched_kernel_seconds, fit_envelope, gpu_trace, phase_totals, presets,
    quirk::QuirkShape, BlasCall, Offload, Precision, Sample,
};

fn any_precision(g: &mut Gen) -> Precision {
    *g.choose(&[Precision::F32, Precision::F64])
}

fn any_offload(g: &mut Gen) -> Offload {
    *g.choose(&[
        Offload::TransferOnce,
        Offload::TransferAlways,
        Offload::Unified,
    ])
}

fn any_system(g: &mut Gen) -> blob_sim::SystemModel {
    match g.usize_in(0, 2) {
        0 => presets::dawn(),
        1 => presets::lumi(),
        _ => presets::isambard_ai(),
    }
}

/// FLOPs and byte counters are positive and monotone in every dim.
#[test]
fn call_accounting_monotone() {
    forall(Config::default().cases(32), |g| {
        let m = g.usize_in(1, 2999);
        let n = g.usize_in(1, 2999);
        let k = g.usize_in(1, 2999);
        let prec = any_precision(g);
        let c = BlasCall::gemm(prec, m, n, k);
        let bigger = BlasCall::gemm(prec, m + 1, n, k);
        assert!(c.paper_flops() > 0.0);
        assert!(bigger.paper_flops() > c.paper_flops());
        assert!(bigger.bytes_to_device() > c.bytes_to_device());
        assert!(c.bytes_from_device() <= c.bytes_to_device());
        assert!(c.working_set() > 0.0);
        assert!(c.arithmetic_intensity() > 0.0);
    });
}

/// GPU time grows when any dimension grows (same offload, iters).
#[test]
fn gpu_time_monotone_in_size() {
    forall(Config::default().cases(32), |g| {
        let sys = any_system(g);
        let s = g.usize_in(16, 1999);
        let offload = any_offload(g);
        let iters = g.usize_in(1, 64) as u32;
        let t1 = sys
            .gpu_seconds(&BlasCall::gemm(Precision::F32, s, s, s), iters, offload)
            .unwrap();
        let t2 = sys
            .gpu_seconds(
                &BlasCall::gemm(Precision::F32, s + 64, s + 64, s + 64),
                iters,
                offload,
            )
            .unwrap();
        assert!(t2 > t1, "{t2} <= {t1}");
    });
}

/// Doubling the batch at fixed per-instance size costs at most 2x the
/// batched kernel time (occupancy only improves) and at least 1x.
#[test]
fn batched_kernel_subadditive() {
    forall(Config::default().cases(32), |g| {
        let sys = any_system(g);
        let s = g.usize_in(4, 127);
        let batch = g.usize_in(1, 255);
        let gpu = sys.gpu.as_ref().unwrap();
        let lib = sys.gpu_lib.as_ref().unwrap();
        let call = BlasCall::gemm(Precision::F32, s, s, s);
        let t1 = gpu_batched_kernel_seconds(gpu, lib, &call, batch);
        let t2 = gpu_batched_kernel_seconds(gpu, lib, &call, 2 * batch);
        assert!(t2 >= t1 * (1.0 - 1e-12), "more work can't be faster");
        assert!(t2 <= 2.0 * t1 * (1.0 + 1e-9), "batching never super-linear");
    });
}

/// The trace decomposition always sums to the scalar timing.
#[test]
fn trace_sums_to_scalar() {
    forall(Config::default().cases(32), |g| {
        let sys = any_system(g);
        let m = g.usize_in(1, 1499);
        let n = g.usize_in(1, 1499);
        let offload = any_offload(g);
        let iters = g.usize_in(1, 32) as u32;
        let gemv = g.chance(0.5);
        let call = if gemv {
            BlasCall::gemv(Precision::F64, m, n)
        } else {
            BlasCall::gemm(Precision::F64, m, n, 64)
        };
        let trace = gpu_trace(&sys, &call, iters, offload).unwrap();
        let total = trace.last().unwrap().end;
        let scalar = sys.gpu_seconds(&call, iters, offload).unwrap();
        assert!((total - scalar).abs() / scalar < 1e-9);
        let sum: f64 = phase_totals(&trace).iter().map(|&(_, t)| t).sum();
        assert!((sum - total).abs() / total < 1e-9);
    });
}

/// Quirk shapes always return positive, finite multipliers.
#[test]
fn quirk_factors_positive() {
    forall(Config::default().cases(32), |g| {
        let start = g.usize_in(0, 4999);
        let penalty = g.f64_in(0.01, 10.0);
        let span = g.usize_in(1, 4999);
        let s = g.usize_in(0, 9999);
        for shape in [
            QuirkShape::DropRecover {
                start,
                penalty,
                span,
            },
            QuirkShape::DropPersist { start, penalty },
            QuirkShape::SmallSizePenalty { end: span, penalty },
            QuirkShape::StepFactor {
                start,
                factor: penalty,
            },
            QuirkShape::DecayAfter {
                start,
                slope: penalty,
            },
        ] {
            let f = shape.factor(s);
            assert!(f.is_finite() && f > 0.0, "{shape:?} at {s} -> {f}");
        }
    });
}

/// DropRecover always returns to exactly 1 beyond start + span.
#[test]
fn drop_recover_converges() {
    forall(Config::default().cases(32), |g| {
        let start = g.usize_in(0, 1999);
        let penalty = g.f64_in(0.1, 5.0);
        let span = g.usize_in(1, 1999);
        let shape = QuirkShape::DropRecover {
            start,
            penalty,
            span,
        };
        assert_eq!(shape.factor(start + span), 1.0);
        assert_eq!(shape.factor(start + span + 1000), 1.0);
        if start > 0 {
            assert_eq!(shape.factor(start - 1), 1.0);
        }
    });
}

/// Envelope fitting recovers synthetic parameters exactly for any
/// positive rate/fixed-cost and a spread of work values.
#[test]
fn envelope_fit_recovers_truth() {
    forall(Config::default().cases(32), |g| {
        let rate_g = g.f64_in(1.0, 50_000.0);
        let fixed_us = g.f64_in(0.0, 500.0);
        let base = g.f64_in(1e5, 1e7);
        let rate = rate_g * 1e9;
        let fixed = fixed_us * 1e-6;
        let samples: Vec<Sample> = (1..=6)
            .map(|i| {
                let w = base * (i * i) as f64;
                Sample {
                    work: w,
                    seconds: w / rate + fixed,
                }
            })
            .collect();
        let e = fit_envelope(&samples).unwrap();
        assert!((e.rate / rate - 1.0).abs() < 1e-6);
        assert!((e.fixed_cost - fixed).abs() < 1e-9 + fixed * 1e-6);
    });
}

/// The batched threshold never exceeds the scan bound and responds
/// sanely to batch growth on the SoC (monotone non-increasing there).
#[test]
fn batched_threshold_bounded() {
    forall(Config::default().cases(32), |g| {
        let batch = g.usize_in(1, 511);
        let sys = presets::isambard_ai();
        let t = sys.batched_gemm_threshold(Precision::F32, batch, 8, Offload::TransferOnce, 512);
        if let Some(t) = t {
            assert!((1..=512).contains(&t));
        }
    });
}
