//! # gpu-blob — GPU BLAS Offload Benchmark, in Rust
//!
//! Umbrella crate re-exporting the workspace's layers under the names the
//! examples and downstream users import:
//!
//! - [`blas`] — the from-scratch BLAS kernels (`blob-blas`)
//! - [`sim`] — heterogeneous-system performance models (`blob-sim`)
//! - [`bench`] — the benchmark harness, problem sweeps and validation
//!   (`blob-core`)
//! - [`analysis`] — offload-threshold analysis and reporting
//!   (`blob-analysis`)

pub use blob_analysis as analysis;
pub use blob_blas as blas;
pub use blob_core as bench;
pub use blob_sim as sim;
